//! The protocol's wire messages and their bit-level size accounting.
//!
//! Five message kinds cover all of Algorithm 1's communication:
//!
//! | message | phase | direction | size (bits) |
//! |---|---|---|---|
//! | [`Msg::QIntent`] | Commitment | pull query | `O(1)` |
//! | [`Msg::Intents`] | Commitment | pull reply | `q·(log m + log n) = O(log² n)` |
//! | [`Msg::Vote`] | Voting | push | `log m + log q = O(log n)` |
//! | [`Msg::QMinCert`] | Find-Min | pull query | `O(1)` |
//! | [`Msg::Cert`] | Find-Min / Coherence | pull reply / push | `O(log² n)` w.h.p. |
//!
//! The certificate is the largest message: it carries `Θ(log n)` votes of
//! `Θ(log n)` bits each (Theorem 4's `O(log² n)` bound — validated by
//! experiment E2).

use crate::certificate::{CertData, Certificate};
use crate::sharing::Shared;
use gossip_net::ids::AgentId;
use gossip_net::size::{MsgSize, SizeEnv};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// One entry `(h, z)` of a vote-intention list `H_u`: "I will send value
/// `h` to agent `z`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntentEntry {
    /// The vote value `h ∈ [m]`.
    pub value: u64,
    /// The vote's recipient `z ∈ [n]`.
    pub target: AgentId,
}

/// Payload of a shared intention list: the immutable entries plus two
/// **receiver-side memos** for verdicts that are pure functions of the
/// entries (and of run-wide parameters every agent shares).
///
/// One list is answered to ~`q` different pullers, and each of them
/// re-derives the same facts: "is this list plausible?" (Commitment) and
/// "how many of its votes target the winner?" (Verification). The memos
/// let the first receiver's computation serve all later ones. This is a
/// *simulator* optimization, not a trust shortcut: the memo is written
/// only by the receivers' own verdict code, over bytes that never change
/// after construction — every receiver still gets exactly the verdict it
/// would have computed itself.
///
/// The memos are relaxed atomics (not `Cell`) because the staged round
/// engine shares one list across apply-stage shards. A memo race is
/// benign by construction: the cached verdict is a pure function of the
/// immutable entries (plus run-wide parameters every agent shares), so
/// concurrent writers can only store the same value — losing a race
/// costs a recomputation, never a wrong answer.
#[derive(Debug)]
pub struct IntentListData {
    entries: Box<[IntentEntry]>,
    /// Memo: `intents_plausible` verdict (parameters are run-constant).
    /// 0 = unset, 1 = implausible, 2 = plausible.
    plausible: AtomicU8,
    /// Memo: `(owner, #entries targeting owner)` of the last queried
    /// owner, packed `owner << 32 | count`; `u64::MAX` = unset (a real
    /// count is bounded by `q` and can never be `u32::MAX`).
    winner_count: AtomicU64,
}

const WINNER_MEMO_UNSET: u64 = u64::MAX;

impl IntentListData {
    /// Cached plausibility verdict: computes via `check` on first use.
    #[inline]
    pub fn memo_plausible(&self, check: impl FnOnce(&[IntentEntry]) -> bool) -> bool {
        match self.plausible.load(Ordering::Relaxed) {
            1 => false,
            2 => true,
            _ => {
                let v = check(&self.entries);
                self.plausible.store(if v { 2 } else { 1 }, Ordering::Relaxed);
                v
            }
        }
    }

    /// Cached count of entries targeting `owner` (recomputed when a
    /// different owner is queried — verifiers converge on one winner).
    #[inline]
    pub fn votes_for(&self, owner: AgentId) -> u32 {
        let packed = self.winner_count.load(Ordering::Relaxed);
        if packed != WINNER_MEMO_UNSET && (packed >> 32) as AgentId == owner {
            return packed as u32;
        }
        let c = self.entries.iter().filter(|e| e.target == owner).count() as u32;
        self.winner_count
            .store((owner as u64) << 32 | c as u64, Ordering::Relaxed);
        c
    }
}

impl PartialEq for IntentListData {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries // memos are caches, not identity
    }
}
impl Eq for IntentListData {}

impl Deref for IntentListData {
    type Target = [IntentEntry];
    fn deref(&self) -> &[IntentEntry] {
        &self.entries
    }
}

impl From<Vec<IntentEntry>> for IntentListData {
    fn from(entries: Vec<IntentEntry>) -> Self {
        IntentListData {
            entries: entries.into_boxed_slice(),
            plausible: AtomicU8::new(0),
            winner_count: AtomicU64::new(WINNER_MEMO_UNSET),
        }
    }
}

/// A full vote-intention list, shared cheaply (one refcount bump) between
/// the owner and every commitment reply it sends out. Dereferences to
/// [`IntentListData`] and through it to the entry slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentList(Shared<IntentListData>);

impl IntentList {
    /// Do both handles share one allocation (and thus one memo)?
    pub fn ptr_eq(a: &IntentList, b: &IntentList) -> bool {
        Shared::ptr_eq(&a.0, &b.0)
    }

    /// Stable identity of the shared payload — the interning key
    /// `rfc_core::checkpoint` uses to preserve sharing (and file
    /// compactness) across snapshot/restore.
    pub fn as_ptr(list: &IntentList) -> *const IntentListData {
        Shared::as_ptr(&list.0)
    }
}

impl Deref for IntentList {
    type Target = IntentListData;
    fn deref(&self) -> &IntentListData {
        &self.0
    }
}

impl From<Vec<IntentEntry>> for IntentList {
    fn from(entries: Vec<IntentEntry>) -> Self {
        IntentList(Shared::new(IntentListData::from(entries)))
    }
}

impl FromIterator<IntentEntry> for IntentList {
    fn from_iter<I: IntoIterator<Item = IntentEntry>>(iter: I) -> Self {
        IntentList::from(iter.into_iter().collect::<Vec<_>>())
    }
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Commitment pull query: "send me your vote intentions".
    QIntent,
    /// Commitment pull reply: the sender's full intention list `H_v`.
    Intents(IntentList),
    /// Voting push: `value` is `h_{u,round}`, `round` its index in `H_u`.
    Vote {
        /// The vote value `h ∈ [m]`.
        value: u64,
        /// Index of this vote in the sender's intention list.
        round: u16,
    },
    /// Find-Min pull query: "send me your current minimum certificate".
    QMinCert,
    /// A certificate (Find-Min reply, Coherence push).
    Cert(Certificate),
}

impl Msg {
    /// Convenience constructor wrapping cert data in an [`Shared`].
    pub fn cert(data: CertData) -> Msg {
        Msg::Cert(Shared::new(data))
    }

    /// Is this one of the two constant-size query tags?
    pub fn is_query(&self) -> bool {
        matches!(self, Msg::QIntent | Msg::QMinCert)
    }
}

impl MsgSize for Msg {
    fn size_bits(&self, env: &SizeEnv) -> u64 {
        SizeEnv::TAG_BITS
            + match self {
                Msg::QIntent | Msg::QMinCert => 0,
                Msg::Intents(list) => list.len() as u64 * env.intent_entry_bits(),
                Msg::Vote { .. } => env.value_bits as u64 + env.round_bits as u64,
                Msg::Cert(data) => {
                    // k + color + owner + votes
                    env.value_bits as u64
                        + env.color_bits as u64
                        + env.id_bits as u64
                        + data.votes.len() as u64 * env.vote_record_bits()
                }
            }
    }
}

/// Wire bits of the instance tag each *non-first* part of a [`Batch`]
/// pays: a 32-bit instance index. The first part's tag is elided — a
/// singleton batch is bit-for-bit the size of its bare payload, which
/// is what keeps the single-instance metering (and with it every
/// pre-instance-plane golden digest) unchanged.
pub const INSTANCE_TAG_BITS: u64 = 32;

/// One instance-tagged payload inside a [`Batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPart<P> {
    /// Index of the protocol instance this payload belongs to.
    pub instance: u32,
    /// The instance's own wire message.
    pub payload: P,
}

/// A multiplexed delivery: every instance payload sharing one
/// `(edge, round)` pair travels as a single wire message, amortizing
/// per-round delivery cost across co-hosted instances (the instance
/// plane's batching layer — see `rfc_core::instances`).
///
/// Size accounting: the first part costs exactly its payload size (tag
/// elided); each further part costs [`INSTANCE_TAG_BITS`] plus its
/// payload. Parts keep the order their instances emitted them in, which
/// the receiving multiplexer relies on to pair replies with pulls.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch<P> {
    parts: Vec<BatchPart<P>>,
}

impl<P> Batch<P> {
    /// An empty batch (push parts before handing it to the engine).
    pub fn new() -> Self {
        Batch { parts: Vec::new() }
    }

    /// A one-part batch — the single-instance fast path.
    pub fn single(instance: u32, payload: P) -> Self {
        Batch { parts: vec![BatchPart { instance, payload }] }
    }

    /// Append one instance's payload.
    pub fn push(&mut self, instance: u32, payload: P) {
        self.parts.push(BatchPart { instance, payload });
    }

    /// The parts, in emission order.
    pub fn parts(&self) -> &[BatchPart<P>] {
        &self.parts
    }

    /// Consume the batch into its parts.
    pub fn into_parts(self) -> Vec<BatchPart<P>> {
        self.parts
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl<P> Default for Batch<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: MsgSize> MsgSize for Batch<P> {
    fn size_bits(&self, env: &SizeEnv) -> u64 {
        self.parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let tag = if i == 0 { 0 } else { INSTANCE_TAG_BITS };
                tag + p.payload.size_bits(env)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::VoteRec;

    fn env() -> SizeEnv {
        SizeEnv::for_n(1024) // id 10, value 30, round ~5, color 10
    }

    #[test]
    fn singleton_batch_is_exactly_its_payload_size() {
        let e = env();
        for msg in [Msg::QIntent, Msg::Vote { value: 3, round: 1 }] {
            let inner = msg.size_bits(&e);
            assert_eq!(
                Batch::single(0, msg).size_bits(&e),
                inner,
                "singleton batch must elide the instance tag"
            );
        }
    }

    #[test]
    fn extra_batch_parts_pay_the_instance_tag() {
        let e = env();
        let mut b = Batch::new();
        b.push(0, Msg::QIntent);
        b.push(7, Msg::Vote { value: 9, round: 0 });
        b.push(9, Msg::QMinCert);
        let expect = Msg::QIntent.size_bits(&e)
            + INSTANCE_TAG_BITS
            + Msg::Vote { value: 9, round: 0 }.size_bits(&e)
            + INSTANCE_TAG_BITS
            + Msg::QMinCert.size_bits(&e);
        assert_eq!(b.size_bits(&e), expect);
        assert_eq!(b.len(), 3);
        assert_eq!(b.parts()[1].instance, 7);
    }

    #[test]
    fn queries_are_constant_size() {
        let e = env();
        assert_eq!(Msg::QIntent.size_bits(&e), SizeEnv::TAG_BITS);
        assert_eq!(Msg::QMinCert.size_bits(&e), SizeEnv::TAG_BITS);
        assert!(Msg::QIntent.is_query());
        assert!(Msg::QMinCert.is_query());
        assert!(!Msg::Vote { value: 0, round: 0 }.is_query());
    }

    #[test]
    fn vote_size_is_logarithmic() {
        let e = env();
        let v = Msg::Vote {
            value: 123,
            round: 4,
        };
        assert_eq!(
            v.size_bits(&e),
            SizeEnv::TAG_BITS + e.value_bits as u64 + e.round_bits as u64
        );
    }

    #[test]
    fn intents_scale_with_list_length() {
        let e = env();
        let list: IntentList = (0..20)
            .map(|i| IntentEntry {
                value: i,
                target: (i % 7) as AgentId,
            })
            .collect();
        let m = Msg::Intents(list);
        assert_eq!(
            m.size_bits(&e),
            SizeEnv::TAG_BITS + 20 * e.intent_entry_bits()
        );
    }

    #[test]
    fn cert_size_counts_votes() {
        let e = env();
        let votes: Vec<_> = (0..15)
            .map(|i| VoteRec {
                voter: i,
                round: 0,
                value: i as u64,
            })
            .collect();
        let cert = CertData::build(3, 1, votes, 1 << 30);
        let m = Msg::cert(cert);
        let fixed = e.value_bits as u64 + e.color_bits as u64 + e.id_bits as u64;
        assert_eq!(
            m.size_bits(&e),
            SizeEnv::TAG_BITS + fixed + 15 * e.vote_record_bits()
        );
    }

    #[test]
    fn empty_cert_still_pays_fixed_fields() {
        let e = env();
        let m = Msg::cert(CertData::build(0, 0, vec![], 100));
        assert!(m.size_bits(&e) > SizeEnv::TAG_BITS);
    }

    #[test]
    fn certificate_message_is_o_log_squared() {
        // With q = Θ(log n) votes of Θ(log n) bits the certificate is
        // Θ(log² n): check the measured size at two scales.
        for exp in [10u32, 20] {
            let n = 1usize << exp;
            let e = SizeEnv::for_n(n);
            let q = 2 * exp as usize;
            let votes: Vec<_> = (0..q)
                .map(|i| VoteRec {
                    voter: (i % n) as AgentId,
                    round: i as u16,
                    value: 1,
                })
                .collect();
            let bits = Msg::cert(CertData::build(0, 0, votes, (n as u64).pow(3)))
                .size_bits(&e);
            let log2n = exp as u64;
            // 2·log n votes · ~4.5·log n bits each ⇒ bits ≈ 9·log²n.
            assert!(bits < 16 * log2n * log2n, "cert too large: {bits}");
            assert!(bits > 4 * log2n * log2n, "cert suspiciously small: {bits}");
        }
    }
}
