//! The instance plane: multiplex many concurrent protocol instances
//! over one GOSSIP network.
//!
//! Each network node hosts one *cell* per instance; a [`MuxAgent`] is
//! the node-level multiplexer that drives every cell it hosts, batches
//! all instance payloads sharing an `(edge, round)` pair into one wire
//! message ([`Batch`]), and demultiplexes arriving batches back to the
//! addressed cells. Every instance individually still plays by GOSSIP
//! rules — at most one active operation per round *per instance* — the
//! node merely aggregates their traffic, which is the standard
//! multi-tenancy picture for gossip substrates (one physical overlay,
//! many logical dissemination streams).
//!
//! ## Guarantees
//!
//! * **Single-instance identity.** A plan of exactly one consensus
//!   instance (start 0, no send budget) runs through [`drive_network`]
//!   with engine-level loss, and a singleton [`Batch`] is bit-for-bit
//!   the size of its bare payload — so the multiplexed run is
//!   *digest-identical* to the legacy [`crate::run_protocol`] path
//!   (pinned by `tests/dispatch_equivalence.rs` and a golden row).
//! * **Per-instance phase clocks.** A cell's local round is
//!   `engine_round - start_round`; instances start and finish
//!   independently, and a consensus cell finalizes (Verification) the
//!   moment its own window closes, regardless of co-hosted stragglers.
//! * **Stream independence.** Multi-instance loss is drawn *inside* the
//!   multiplexer, one fresh stream per `(instance, family, round,
//!   receiver, peer)` event via
//!   [`gossip_net::rng::loss_streams::per_instance`], and instance
//!   `j > 0` seeds all its private coins from
//!   `derive_seed(master, INSTANCE_BASE + j)`. Adding or removing an
//!   instance therefore never perturbs another instance's draws — the
//!   interference test pins instance 0's report with 0 and 10³
//!   co-hosted neighbours.
//!
//! ## Metering
//!
//! Per-instance meters charge **payload bits only**, at send time, plus
//! the loss-undelivered count observed at receivers; the batch's
//! instance-tag overhead ([`crate::msg::INSTANCE_TAG_BITS`] per
//! non-first part) and engine-level suppression (off-edge, partition,
//! crashed receiver) appear only in the *aggregate* engine metrics. An
//! instance's meter is therefore invariant to co-hosting.
//!
//! ## Priority classes
//!
//! A plan may cap each node's sends with
//! [`InstancePlan::send_budget`]: per round, [`Priority::High`] cells
//! spend the budget first (rotating within a class for fairness), and a
//! budget-skipped *pull* is observed by its cell as peer silence — a
//! deferred `on_reply(None)` delivered before the cell next acts.

use crate::agent_plane::AgentSlot;
use crate::engine::{ConsensusAgent, ProtocolCore, Role};
use crate::msg::{Batch, Msg};
use crate::outcome::{combine_decisions, Decision, Outcome};
use crate::runner::{
    drive_network, effective_decision, network_ingredients, streams, RunConfig, RunReport,
};
use gossip_net::agent::{Agent, Op, RoundCtx};
use gossip_net::dynamics::LossSchedule;
use gossip_net::ids::AgentId;
use gossip_net::metrics::{Metrics, Tally};
use gossip_net::network::Network;
use gossip_net::rng::{derive_seed, loss_streams, DetRng};
use gossip_net::size::{MsgSize, SizeEnv};
use std::collections::VecDeque;

/// Stream label separating instance `j`'s private randomness from the
/// master seed: instance 0 uses the master seed itself (legacy-exact),
/// instance `j > 0` uses `derive_seed(master, INSTANCE_BASE + j)`.
pub const INSTANCE_BASE: u64 = 0x1257_0000;

/// Per-agent RNG stream base for rumor-vote cells (the consensus cells
/// reuse the legacy `streams::AGENT_BASE`, off the instance seed).
const RUMOR_AGENT_BASE: u64 = 0xB0B0_0000;

/// What protocol an instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceKind {
    /// The paper's rational-fair-consensus protocol `P`.
    Consensus,
    /// k-of-n rumor voting: a single source starts a rumor, every agent
    /// that learns it adds its own vote, and an agent *decides* once it
    /// has seen `k` distinct voters (push-pull spreading).
    RumorVote {
        /// Votes required to decide.
        k: usize,
    },
}

/// Send-budget priority class of an instance (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Served first when a send budget is set.
    High,
    /// Served from whatever budget remains.
    Low,
}

/// One instance in a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceSpec {
    /// Protocol this instance runs.
    pub kind: InstanceKind,
    /// Send-budget class.
    pub priority: Priority,
    /// Engine round at which the instance's local clock starts.
    pub start_round: usize,
}

impl InstanceSpec {
    /// A high-priority instance starting at round 0.
    pub fn new(kind: InstanceKind) -> Self {
        InstanceSpec { kind, priority: Priority::High, start_round: 0 }
    }

    /// Set the priority class.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Set the start round (staggered admission).
    pub fn start_at(mut self, round: usize) -> Self {
        self.start_round = round;
        self
    }
}

/// The set of concurrent instances one run multiplexes, part of
/// [`RunConfig`] (and therefore of checkpoint config fingerprints).
#[derive(Debug, Clone, PartialEq)]
pub struct InstancePlan {
    /// The instances, index-addressed (the index is the wire tag).
    pub specs: Vec<InstanceSpec>,
    /// Per-node, per-round cap on active operations across all hosted
    /// instances (`None` = every instance acts every round).
    pub send_budget: Option<usize>,
}

impl InstancePlan {
    /// The default plan: one consensus instance, no budget — the plan
    /// every legacy entry point implicitly runs.
    pub fn single_consensus() -> Self {
        InstancePlan {
            specs: vec![InstanceSpec::new(InstanceKind::Consensus)],
            send_budget: None,
        }
    }

    /// `count` consensus instances, all high priority, all starting at 0.
    pub fn consensus(count: usize) -> Self {
        InstancePlan {
            specs: vec![InstanceSpec::new(InstanceKind::Consensus); count],
            send_budget: None,
        }
    }

    /// `count` k-of-n rumor-vote instances.
    pub fn rumor(count: usize, k: usize) -> Self {
        InstancePlan {
            specs: vec![InstanceSpec::new(InstanceKind::RumorVote { k }); count],
            send_budget: None,
        }
    }

    /// Append an instance.
    pub fn with_spec(mut self, spec: InstanceSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Cap per-node sends per round (priority classes split it).
    pub fn budget(mut self, ops_per_round: usize) -> Self {
        self.send_budget = Some(ops_per_round);
        self
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the plan is empty (invalid for [`run_plane`]).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// True when this plan is the legacy shape — exactly one consensus
    /// instance, starting at round 0, unbudgeted — which
    /// [`run_plane`] executes through the legacy driver with
    /// engine-level loss (bit-identical to [`crate::run_protocol`]).
    pub fn is_single_consensus(&self) -> bool {
        self.send_budget.is_none()
            && self.specs.len() == 1
            && self.specs[0].kind == InstanceKind::Consensus
            && self.specs[0].start_round == 0
    }
}

impl Default for InstancePlan {
    fn default() -> Self {
        InstancePlan::single_consensus()
    }
}

/// A fixed-width bitmap of agent ids that have voted for a rumor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoterSet {
    n: u32,
    words: Vec<u64>,
}

impl VoterSet {
    /// The empty set over `n` agents.
    pub fn empty(n: usize) -> Self {
        VoterSet { n: n as u32, words: vec![0; n.div_ceil(64)] }
    }

    /// Add a voter; returns true if it was new.
    pub fn insert(&mut self, id: AgentId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Is `id` in the set?
    pub fn contains(&self, id: AgentId) -> bool {
        self.words[id as usize / 64] & (1 << (id as usize % 64)) != 0
    }

    /// Union another set into this one.
    pub fn union_with(&mut self, other: &VoterSet) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of voters.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitmap width in bits (= `n`), its wire size.
    pub fn width_bits(&self) -> u64 {
        self.n as u64
    }
}

/// Wire messages of the k-of-n rumor-vote instance kind.
#[derive(Debug, Clone, PartialEq)]
pub enum RumorVoteMsg {
    /// "Tell me the rumor and its votes" (pull query).
    Query,
    /// The rumor's value plus the bitmap of known voters.
    Votes {
        /// The rumor payload.
        value: u64,
        /// Every voter the sender knows of.
        voters: VoterSet,
    },
}

/// One instance's payload on the multiplexed wire.
#[derive(Debug, Clone, PartialEq)]
pub enum InstPayload {
    /// A consensus-protocol message.
    Consensus(Msg),
    /// A rumor-vote message.
    Rumor(RumorVoteMsg),
}

impl MsgSize for InstPayload {
    fn size_bits(&self, env: &SizeEnv) -> u64 {
        match self {
            InstPayload::Consensus(m) => m.size_bits(env),
            InstPayload::Rumor(RumorVoteMsg::Query) => SizeEnv::TAG_BITS,
            InstPayload::Rumor(RumorVoteMsg::Votes { voters, .. }) => {
                SizeEnv::TAG_BITS + env.value_bits as u64 + voters.width_bits()
            }
        }
    }
}

/// The multiplexed wire message: instance payloads batched per edge.
pub type PlaneMsg = Batch<InstPayload>;

/// Per-agent state of one k-of-n rumor-vote instance.
#[derive(Debug)]
pub struct RumorVoteCore {
    id: AgentId,
    k: usize,
    rng: DetRng,
    /// `Some((value, voters))` once informed.
    known: Option<(u64, VoterSet)>,
    /// Local round at which this agent first saw `k` voters.
    pub decided_at: Option<usize>,
}

impl RumorVoteCore {
    /// A fresh cell; the source agent starts informed with its own vote.
    pub fn new(id: AgentId, n: usize, k: usize, value: u64, source: AgentId, rng: DetRng) -> Self {
        let mut core = RumorVoteCore { id, k, rng, known: None, decided_at: None };
        if id == source {
            let mut voters = VoterSet::empty(n);
            voters.insert(id);
            core.known = Some((value, voters));
            core.check_decided(0);
        }
        core
    }

    fn check_decided(&mut self, round: usize) {
        if self.decided_at.is_none()
            && self.known.as_ref().is_some_and(|(_, v)| v.count() >= self.k)
        {
            self.decided_at = Some(round);
        }
    }

    /// Merge an incoming vote set (and cast our own vote).
    fn absorb(&mut self, value: u64, voters: &VoterSet, round: usize) {
        match &mut self.known {
            Some((_, mine)) => mine.union_with(voters),
            None => {
                let mut mine = voters.clone();
                mine.insert(self.id);
                self.known = Some((value, mine));
            }
        }
        self.check_decided(round);
    }

    /// PushPull spreading: uninformed agents pull; informed-but-
    /// undecided agents alternate pushing their votes (spreading) with
    /// pulling (collecting votes they are still missing — one pull of
    /// any already-decided peer closes the gap); decided agents go
    /// passive but keep answering pulls.
    fn act(&mut self, ctx: &RoundCtx) -> Option<Op<RumorVoteMsg>> {
        if self.decided_at.is_some() {
            return None;
        }
        let peer = ctx.topology.sample_peer(self.id, &mut self.rng);
        match &self.known {
            Some((value, voters)) if ctx.round % 2 == 0 => Some(Op::push(
                peer,
                RumorVoteMsg::Votes { value: *value, voters: voters.clone() },
            )),
            Some(_) | None => Some(Op::pull(peer, RumorVoteMsg::Query)),
        }
    }

    fn on_pull(&mut self) -> Option<RumorVoteMsg> {
        self.known
            .as_ref()
            .map(|(value, voters)| RumorVoteMsg::Votes { value: *value, voters: voters.clone() })
    }

    fn on_msg(&mut self, msg: &RumorVoteMsg, round: usize) {
        if let RumorVoteMsg::Votes { value, voters } = msg {
            self.absorb(*value, voters, round);
        }
    }
}

/// One hosted instance inside a [`MuxAgent`].
struct Cell {
    start_round: usize,
    priority: Priority,
    inner: CellInner,
}

enum CellInner {
    Consensus {
        slot: AgentSlot,
        /// Local rounds in the instance's communicating window (`4q`).
        window: usize,
        finalized: bool,
    },
    Rumor(RumorVoteCore),
}

/// In-handler loss state for multi-instance plans (single-instance
/// plans keep loss in the engine, legacy-exact).
#[derive(Clone)]
struct LocalLoss {
    schedule: LossSchedule,
    loss_seed: u64,
}

impl LocalLoss {
    /// One fresh draw for a per-part loss event. `receiver` keys the
    /// stream (matching the engine's per-agent discipline, where the
    /// receiving side owns the draw).
    fn dropped(&self, family: u64, round: usize, instance: u32, receiver: AgentId, peer: AgentId) -> bool {
        let p = self.schedule.p_at(round);
        p > 0.0
            && loss_streams::per_instance(self.loss_seed, family, round, instance as u64, receiver, peer)
                .chance(p)
    }
}

/// A pull this node sent and whose reply has not arrived yet:
/// the engine answers pulls strictly in op order, so a FIFO suffices.
struct PendingPull {
    peer: AgentId,
    /// `(instance, local round at which the pull was made)`.
    covered: Vec<(u32, usize)>,
}

/// The node-level multiplexer: one per network slot, hosting one cell
/// per instance of the plan (see the module docs).
pub struct MuxAgent {
    id: AgentId,
    env: SizeEnv,
    cells: Vec<Cell>,
    /// Cell indices by priority class, in plan order.
    high: Vec<u32>,
    low: Vec<u32>,
    local_loss: Option<LocalLoss>,
    send_budget: Option<usize>,
    pending_pulls: VecDeque<PendingPull>,
    /// Budget-skipped pulls owed a synthetic `on_reply(None)`:
    /// `(instance, local round of the skipped pull)`.
    deferred_silence: Vec<(u32, usize)>,
    /// Per-instance send meters (payload bits only; see module docs).
    inst_sent: Vec<Tally>,
    /// Per-instance in-handler loss drops observed at this receiver.
    inst_undelivered: Vec<u64>,
    /// Scratch: `(peer, kind) -> out-op slot + 1` for batch grouping.
    group_slot: Vec<u32>,
    touched: Vec<usize>,
}

impl MuxAgent {
    fn new(
        id: AgentId,
        env: SizeEnv,
        cells: Vec<Cell>,
        local_loss: Option<LocalLoss>,
        send_budget: Option<usize>,
    ) -> Self {
        let mut high = Vec::new();
        let mut low = Vec::new();
        for (j, c) in cells.iter().enumerate() {
            match c.priority {
                Priority::High => high.push(j as u32),
                Priority::Low => low.push(j as u32),
            }
        }
        let k = cells.len();
        MuxAgent {
            id,
            env,
            cells,
            high,
            low,
            local_loss,
            send_budget,
            pending_pulls: VecDeque::new(),
            deferred_silence: Vec::new(),
            inst_sent: vec![Tally::default(); k],
            inst_undelivered: vec![0; k],
            group_slot: Vec::new(),
            touched: Vec::new(),
        }
    }

    fn local_ctx<'a>(&self, ctx: &RoundCtx<'a>, start: usize) -> RoundCtx<'a> {
        RoundCtx { round: ctx.round - start, topology: ctx.topology }
    }

    /// Deliver the synthetic silences owed to budget-skipped pulls.
    fn flush_deferred(&mut self, ctx: &RoundCtx) {
        for k in 0..self.deferred_silence.len() {
            let (inst, local) = self.deferred_silence[k];
            let cell = &mut self.cells[inst as usize];
            let lctx = RoundCtx { round: local, topology: ctx.topology };
            match &mut cell.inner {
                CellInner::Consensus { slot, .. } => slot.on_reply(0, None, &lctx),
                CellInner::Rumor(_) => {}
            }
        }
        self.deferred_silence.clear();
    }

    /// One cell's intended op this round, with per-instance window and
    /// phase-clock bookkeeping (consensus cells finalize the round
    /// after their window closes).
    fn cell_intent(&mut self, j: u32, ctx: &RoundCtx) -> Option<Op<InstPayload>> {
        let start = self.cells[j as usize].start_round;
        if ctx.round < start {
            return None; // not admitted yet
        }
        let lctx = self.local_ctx(ctx, start);
        match &mut self.cells[j as usize].inner {
            CellInner::Consensus { slot, window, finalized } => {
                if lctx.round >= *window {
                    if !*finalized {
                        let fctx = RoundCtx { round: *window, topology: ctx.topology };
                        slot.finalize(&fctx);
                        *finalized = true;
                    }
                    return None;
                }
                slot.act(&lctx)
                    .map(|op| map_op(op, InstPayload::Consensus))
            }
            CellInner::Rumor(core) => {
                core.act(&lctx).map(|op| map_op(op, InstPayload::Rumor))
            }
        }
    }

    /// Append `(instance, op)` to the batched out-ops, merging ops that
    /// share `(peer, kind)` into one wire message.
    fn group_into(
        &mut self,
        out: &mut Vec<Op<PlaneMsg>>,
        out_base: usize,
        inst: u32,
        op: Op<InstPayload>,
    ) {
        // group_slot was sized to 2·n by act_multi before any grouping.
        let (peer, is_pull, payload) = match op {
            Op::Push { to, msg } => (to, false, msg),
            Op::Pull { from, query } => (from, true, query),
        };
        self.inst_sent[inst as usize].record(payload.size_bits(&self.env));
        let key = peer as usize * 2 + is_pull as usize;
        match self.group_slot[key] {
            0 => {
                let batch = Batch::single(inst, payload);
                out.push(if is_pull {
                    Op::Pull { from: peer, query: batch }
                } else {
                    Op::Push { to: peer, msg: batch }
                });
                self.group_slot[key] = (out.len() - out_base) as u32;
                self.touched.push(key);
            }
            slot => {
                match &mut out[out_base + slot as usize - 1] {
                    Op::Push { msg, .. } => msg.push(inst, payload),
                    Op::Pull { query, .. } => query.push(inst, payload),
                }
            }
        }
    }
}

fn map_op<A, B>(op: Op<A>, f: impl FnOnce(A) -> B) -> Op<B> {
    match op {
        Op::Push { to, msg } => Op::Push { to, msg: f(msg) },
        Op::Pull { from, query } => Op::Pull { from, query: f(query) },
    }
}

impl Agent<PlaneMsg> for MuxAgent {
    /// The plane acts via [`Agent::act_multi`] only; the async engine
    /// (which calls `act`) does not drive instance planes.
    fn act(&mut self, _ctx: &RoundCtx) -> Option<Op<PlaneMsg>> {
        None
    }

    fn act_multi(&mut self, ctx: &RoundCtx, out: &mut Vec<Op<PlaneMsg>>) {
        self.flush_deferred(ctx);
        if self.group_slot.len() < 2 * ctx.n() {
            self.group_slot.resize(2 * ctx.n(), 0);
        }
        let out_base = out.len();
        let mut budget = self.send_budget.unwrap_or(usize::MAX);
        for class in [std::mem::take(&mut self.high), std::mem::take(&mut self.low)] {
            // Rotate the class start index by round so a tight budget is
            // shared fairly within a class (no-op when unbudgeted).
            let offset = if self.send_budget.is_some() && !class.is_empty() {
                ctx.round % class.len()
            } else {
                0
            };
            for k in 0..class.len() {
                let j = class[(k + offset) % class.len()];
                let Some(op) = self.cell_intent(j, ctx) else { continue };
                if budget == 0 {
                    // Over budget: the op is suppressed on the wire. A
                    // suppressed pull is owed a synthetic silence so the
                    // cell observes "peer did not answer".
                    if matches!(op, Op::Pull { .. }) {
                        let local = ctx.round - self.cells[j as usize].start_round;
                        self.deferred_silence.push((j, local));
                    }
                    continue;
                }
                budget -= 1;
                self.group_into(out, out_base, j, op);
            }
            match (self.high.is_empty(), self.low.is_empty()) {
                (true, _) => self.high = class,
                (_, true) => self.low = class,
                _ => unreachable!("class vectors restored twice"),
            }
        }
        // Register pending pulls in op order (the engine answers them in
        // exactly this order) and reset the grouping scratch.
        for op in &out[out_base..] {
            if let Op::Pull { from, query } = op {
                let covered = query
                    .parts()
                    .iter()
                    .map(|p| (p.instance, ctx.round - self.cells[p.instance as usize].start_round))
                    .collect();
                self.pending_pulls.push_back(PendingPull { peer: *from, covered });
            }
        }
        for key in self.touched.drain(..) {
            self.group_slot[key] = 0;
        }
    }

    fn on_pull(&mut self, from: AgentId, query: &PlaneMsg, ctx: &RoundCtx) -> Option<PlaneMsg> {
        let mut reply: Option<PlaneMsg> = None;
        for part in query.parts() {
            let inst = part.instance;
            if let Some(loss) = &self.local_loss {
                if loss.dropped(loss_streams::QUERY, ctx.round, inst, self.id, from) {
                    self.inst_undelivered[inst as usize] += 1;
                    continue;
                }
            }
            let cell = &mut self.cells[inst as usize];
            if ctx.round < cell.start_round {
                continue; // dormant cells are silent
            }
            let lctx = RoundCtx { round: ctx.round - cell.start_round, topology: ctx.topology };
            let answer = match (&mut cell.inner, &part.payload) {
                (CellInner::Consensus { slot, .. }, InstPayload::Consensus(q)) => {
                    slot.on_pull(from, q, &lctx).map(InstPayload::Consensus)
                }
                (CellInner::Rumor(core), InstPayload::Rumor(_)) => {
                    core.on_pull().map(InstPayload::Rumor)
                }
                _ => {
                    debug_assert!(false, "instance {inst}: payload kind mismatch");
                    None
                }
            };
            if let Some(payload) = answer {
                self.inst_sent[inst as usize].record(payload.size_bits(&self.env));
                reply.get_or_insert_with(Batch::new).push(inst, payload);
            }
        }
        reply
    }

    fn on_push(&mut self, from: AgentId, msg: &PlaneMsg, ctx: &RoundCtx) {
        for part in msg.parts() {
            let inst = part.instance;
            if let Some(loss) = &self.local_loss {
                if loss.dropped(loss_streams::PUSH, ctx.round, inst, self.id, from) {
                    self.inst_undelivered[inst as usize] += 1;
                    continue;
                }
            }
            let cell = &mut self.cells[inst as usize];
            if ctx.round < cell.start_round {
                continue;
            }
            let lctx = RoundCtx { round: ctx.round - cell.start_round, topology: ctx.topology };
            match (&mut cell.inner, &part.payload) {
                (CellInner::Consensus { slot, .. }, InstPayload::Consensus(m)) => {
                    slot.on_push(from, m, &lctx)
                }
                (CellInner::Rumor(core), InstPayload::Rumor(m)) => core.on_msg(m, lctx.round),
                _ => debug_assert!(false, "instance {inst}: payload kind mismatch"),
            }
        }
    }

    fn on_reply(&mut self, from: AgentId, reply: Option<PlaneMsg>, ctx: &RoundCtx) {
        let pending = self
            .pending_pulls
            .pop_front()
            .expect("reply delivered with no pull outstanding");
        debug_assert_eq!(pending.peer, from, "replies must arrive in pull order");
        let mut parts = reply.map(Batch::into_parts).unwrap_or_default().into_iter().peekable();
        for (inst, local) in pending.covered {
            // The pullee preserved part order and only omitted silent
            // parts, so a single forward pass pairs them back up.
            let part = match parts.peek() {
                Some(p) if p.instance == inst => parts.next(),
                _ => None,
            };
            let payload = match part {
                Some(p) => {
                    let lost = self.local_loss.as_ref().is_some_and(|loss| {
                        loss.dropped(loss_streams::REPLY, ctx.round, inst, self.id, from)
                    });
                    if lost {
                        self.inst_undelivered[inst as usize] += 1;
                        None
                    } else {
                        Some(p.payload)
                    }
                }
                None => None,
            };
            let cell = &mut self.cells[inst as usize];
            let lctx = RoundCtx { round: local, topology: ctx.topology };
            match (&mut cell.inner, payload) {
                (CellInner::Consensus { slot, .. }, Some(InstPayload::Consensus(m))) => {
                    slot.on_reply(from, Some(m), &lctx)
                }
                (CellInner::Consensus { slot, .. }, None) => slot.on_reply(from, None, &lctx),
                (CellInner::Rumor(core), Some(InstPayload::Rumor(m))) => core.on_msg(&m, local),
                (CellInner::Rumor(_), None) => {}
                _ => debug_assert!(false, "instance {inst}: payload kind mismatch"),
            }
        }
    }

    fn finalize(&mut self, ctx: &RoundCtx) {
        self.flush_deferred(ctx);
        for cell in &mut self.cells {
            if let CellInner::Consensus { slot, window, finalized } = &mut cell.inner {
                if !*finalized {
                    let local = ctx.round.saturating_sub(cell.start_round).min(*window);
                    let fctx = RoundCtx { round: local, topology: ctx.topology };
                    slot.finalize(&fctx);
                    *finalized = true;
                }
            }
        }
    }
}

// The staged engine shards `Vec<MuxAgent>` across worker threads and
// hands shards shared `&PlaneMsg` deliveries.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<MuxAgent>();
    assert_send::<PlaneMsg>();
    assert_sync::<PlaneMsg>();
};

/// Report for one instance of a plane run. All fields are pure
/// functions of the instance's own seed streams and traffic — adding a
/// co-hosted instance never changes them (unless a send budget couples
/// the instances on purpose).
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// The spec this instance ran.
    pub spec: InstanceSpec,
    /// Consensus instances: the combined outcome over active agents.
    pub outcome: Option<Outcome>,
    /// Consensus instances: the agreed certificate's owner.
    pub winner: Option<AgentId>,
    /// Consensus instances: per-agent terminal status.
    pub decisions: Vec<Decision>,
    /// Rumor instances: per-agent local round of decision.
    pub decided_at: Vec<Option<usize>>,
    /// Agents that decided (consensus: `Decided`; rumor: saw `k` votes).
    pub decided: usize,
    /// Local rounds until the instance as a whole decided (rumor: the
    /// slowest active agent's decision round; consensus: the window).
    pub rounds_to_decision: Option<usize>,
    /// Payload-only meters (see module docs for the metering contract).
    pub metrics: Metrics,
}

/// Report of a whole plane run.
#[derive(Debug, Clone)]
pub struct PlaneReport {
    /// Per-instance reports, plan-ordered.
    pub instances: Vec<InstanceReport>,
    /// The engine's aggregate metrics: *all* wire traffic, including
    /// batch tag overhead and engine-suppressed deliveries.
    pub aggregate: Metrics,
    /// Engine rounds executed.
    pub rounds: usize,
    /// When instance 0 is a round-0 consensus instance: a legacy-shaped
    /// [`RunReport`] over its cells — digest-identical to
    /// [`crate::run_protocol`] on the single-instance plan.
    pub legacy: Option<RunReport>,
}

/// Execute the instance plan of `cfg.instances` (see module docs).
///
/// Single-instance plans take the legacy driver with engine-level loss
/// (bit-identical to [`crate::run_protocol`]); multi-instance plans run
/// one "instances" phase with loss drawn per part inside the
/// multiplexer. Op-log audits are not supported on the plane
/// (`record_ops` must be off).
pub fn run_plane(cfg: &RunConfig, seed: u64) -> PlaneReport {
    let plan = &cfg.instances;
    assert!(!plan.is_empty(), "an instance plan needs at least one instance");
    assert!(!cfg.record_ops, "instance planes do not support op-log audits");
    let single_legacy = plan.is_single_consensus();
    let (params, colors0, faults, topology, env, mut net_cfg) = network_ingredients(cfg, seed);
    let window = params.total_rounds();
    let n = cfg.n;

    // Multi-instance plans move loss out of the engine and into the
    // multiplexer, one stream per (instance, family, round, receiver,
    // peer) — the engine would otherwise draw one coin per *batch*,
    // coupling co-hosted instances' streams.
    let local_loss = if single_legacy {
        None
    } else {
        let schedule = net_cfg
            .loss_schedule
            .take()
            .unwrap_or_else(|| LossSchedule::constant(net_cfg.loss_probability));
        let loss_seed = net_cfg.loss_seed;
        net_cfg.loss_probability = 0.0;
        (schedule.max_p() > 0.0).then_some(LocalLoss { schedule, loss_seed })
    };

    // Per-instance ingredients: instance 0 replicates the legacy seed
    // streams exactly; instance j > 0 derives everything from its own
    // sub-seed, making its streams co-hosting-invariant.
    let mut per_instance_colors: Vec<Option<Vec<gossip_net::ids::ColorId>>> = Vec::new();
    let inst_seeds: Vec<u64> = (0..plan.len() as u64)
        .map(|j| if j == 0 { seed } else { derive_seed(seed, INSTANCE_BASE + j) })
        .collect();
    for (j, spec) in plan.specs.iter().enumerate() {
        per_instance_colors.push(match spec.kind {
            InstanceKind::Consensus => Some(if j == 0 {
                colors0.clone()
            } else {
                cfg.assign_colors(inst_seeds[j])
            }),
            InstanceKind::RumorVote { .. } => None,
        });
    }

    let agents: Vec<MuxAgent> = (0..n)
        .map(|i| {
            let cells = plan
                .specs
                .iter()
                .enumerate()
                .map(|(j, spec)| {
                    let inner = match spec.kind {
                        InstanceKind::Consensus => {
                            let colors = per_instance_colors[j].as_ref().expect("consensus colors");
                            let rng = DetRng::seeded(inst_seeds[j], streams::AGENT_BASE + i as u64);
                            let core = ProtocolCore::new_on(
                                &topology,
                                i as AgentId,
                                params,
                                params.sync_schedule(),
                                colors[i],
                                rng,
                            );
                            CellInner::Consensus {
                                slot: AgentSlot::honest(core),
                                window,
                                finalized: false,
                            }
                        }
                        InstanceKind::RumorVote { k } => {
                            let rng = DetRng::seeded(inst_seeds[j], RUMOR_AGENT_BASE + i as u64);
                            CellInner::Rumor(RumorVoteCore::new(
                                i as AgentId,
                                n,
                                k,
                                j as u64 + 1,
                                (j % n) as AgentId,
                                rng,
                            ))
                        }
                    };
                    Cell { start_round: spec.start_round, priority: spec.priority, inner }
                })
                .collect();
            MuxAgent::new(i as AgentId, env, cells, local_loss.clone(), plan.send_budget)
        })
        .collect();

    let mut net = Network::with_config(topology, env, agents, faults, net_cfg);
    if single_legacy {
        // The legacy cadence (one metrics phase per protocol phase,
        // honoring skip_coherence) — what pins the phase-table identity.
        drive_network(&mut net, cfg);
    } else {
        let total = plan
            .specs
            .iter()
            .map(|s| s.start_round + window)
            .max()
            .expect("non-empty plan");
        net.enter_phase("instances");
        if crate::runner::use_staged_engine(cfg) {
            net.run_staged(total);
        } else {
            net.run(total);
        }
        net.finalize();
    }

    collect_plane_report(&net, cfg)
}

fn collect_plane_report(net: &Network<PlaneMsg, MuxAgent>, cfg: &RunConfig) -> PlaneReport {
    let plan = &cfg.instances;
    let faults = net.fault_state();
    let n = net.n();
    let mut instances = Vec::with_capacity(plan.len());
    for (j, spec) in plan.specs.iter().enumerate() {
        // Payload meters: sum every node's per-instance tallies.
        let mut tally = Tally::default();
        let mut undelivered = 0u64;
        for i in 0..n as AgentId {
            let a = net.agent(i);
            tally.merge(&a.inst_sent[j]);
            undelivered += a.inst_undelivered[j];
        }
        let mut metrics = Metrics::new();
        metrics.record_bulk(&tally, undelivered);
        let window = cfg.params().total_rounds();
        metrics.rounds = net.round().saturating_sub(spec.start_round).min(window) as u64;

        let mut report = InstanceReport {
            spec: *spec,
            outcome: None,
            winner: None,
            decisions: Vec::new(),
            decided_at: Vec::new(),
            decided: 0,
            rounds_to_decision: None,
            metrics,
        };
        match spec.kind {
            InstanceKind::Consensus => {
                let mut decisions = Vec::with_capacity(n);
                let mut winner = None;
                for i in 0..n as AgentId {
                    let CellInner::Consensus { slot, .. } = &net.agent(i).cells[j].inner else {
                        unreachable!("cell kind matches spec kind")
                    };
                    let core = ConsensusAgent::core(slot);
                    let d = if faults.is_down(i) {
                        Decision::Faulty
                    } else {
                        match effective_decision(core, cfg) {
                            Some(c) => {
                                if winner.is_none() && ConsensusAgent::role(slot) == Role::Honest {
                                    winner = core.min_cert.as_ref().map(|ce| ce.owner);
                                }
                                Decision::Decided(c)
                            }
                            None => Decision::Failed,
                        }
                    };
                    decisions.push(d);
                }
                let outcome = combine_decisions(&decisions);
                if !outcome.is_consensus() {
                    winner = None;
                }
                report.decided =
                    decisions.iter().filter(|d| matches!(d, Decision::Decided(_))).count();
                report.rounds_to_decision =
                    outcome.is_consensus().then(|| cfg.params().total_rounds());
                report.outcome = Some(outcome);
                report.winner = winner;
                report.decisions = decisions;
            }
            InstanceKind::RumorVote { .. } => {
                let mut decided_at = Vec::with_capacity(n);
                let mut all = true;
                let mut slowest = 0usize;
                for i in 0..n as AgentId {
                    let CellInner::Rumor(core) = &net.agent(i).cells[j].inner else {
                        unreachable!("cell kind matches spec kind")
                    };
                    decided_at.push(core.decided_at);
                    if !faults.is_down(i) {
                        match core.decided_at {
                            Some(r) => slowest = slowest.max(r),
                            None => all = false,
                        }
                    }
                }
                report.decided = decided_at.iter().flatten().count();
                report.rounds_to_decision = all.then_some(slowest);
                report.decided_at = decided_at;
            }
        }
        instances.push(report);
    }

    let legacy = (plan.specs[0].kind == InstanceKind::Consensus && plan.specs[0].start_round == 0)
        .then(|| legacy_report(net, cfg));

    PlaneReport {
        instances,
        aggregate: net.metrics().clone(),
        rounds: net.round(),
        legacy,
    }
}

/// A [`RunReport`] over instance 0's consensus cells, shaped exactly
/// like [`crate::collect_report`]'s output so the single-instance plane
/// run digests identically to the legacy pipeline.
fn legacy_report(net: &Network<PlaneMsg, MuxAgent>, cfg: &RunConfig) -> RunReport {
    let faults = net.fault_state();
    let n = net.n();
    let mut decisions = Vec::with_capacity(n);
    let mut initial_colors = Vec::with_capacity(n);
    let mut verify_failures = Vec::with_capacity(n);
    let mut winner: Option<AgentId> = None;
    for i in 0..n as AgentId {
        let CellInner::Consensus { slot, .. } = &net.agent(i).cells[0].inner else {
            unreachable!("legacy_report requires a consensus instance 0")
        };
        let core = ConsensusAgent::core(slot);
        initial_colors.push(core.color);
        verify_failures.push(core.verify_failure);
        let d = if faults.is_down(i) {
            Decision::Faulty
        } else {
            match effective_decision(core, cfg) {
                Some(c) => {
                    if winner.is_none() && ConsensusAgent::role(slot) == Role::Honest {
                        winner = core.min_cert.as_ref().map(|ce| ce.owner);
                    }
                    Decision::Decided(c)
                }
                None => Decision::Failed,
            }
        };
        decisions.push(d);
    }
    let outcome = combine_decisions(&decisions);
    if !outcome.is_consensus() {
        winner = None;
    }
    RunReport {
        outcome,
        rounds: net.round(),
        metrics: net.metrics().clone(),
        winner,
        decisions,
        initial_colors,
        n_active: faults.n_active(),
        verify_failures,
        audit: None,
        stage_times: None,
        shard_schedule: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;

    #[test]
    fn default_plan_is_the_legacy_shape() {
        let plan = InstancePlan::default();
        assert!(plan.is_single_consensus());
        assert_eq!(plan.len(), 1);
        // Budgets and staggering leave the legacy shape.
        assert!(!InstancePlan::single_consensus().budget(1).is_single_consensus());
        assert!(!InstancePlan::rumor(1, 3).is_single_consensus());
        let staggered = InstancePlan {
            specs: vec![InstanceSpec::new(InstanceKind::Consensus).start_at(4)],
            send_budget: None,
        };
        assert!(!staggered.is_single_consensus());
    }

    #[test]
    fn voter_set_counts_and_unions() {
        let mut a = VoterSet::empty(130);
        assert!(a.insert(0));
        assert!(a.insert(129));
        assert!(!a.insert(0), "reinsert is not fresh");
        let mut b = VoterSet::empty(130);
        b.insert(64);
        a.union_with(&b);
        assert_eq!(a.count(), 3);
        assert!(a.contains(64) && a.contains(129));
        assert_eq!(a.width_bits(), 130);
    }

    #[test]
    fn rumor_instances_all_decide_on_complete_graph() {
        let cfg = RunConfig::builder(16)
            .instances(InstancePlan::rumor(3, 11))
            .build();
        let report = run_plane(&cfg, 7);
        assert_eq!(report.instances.len(), 3);
        for (j, inst) in report.instances.iter().enumerate() {
            assert_eq!(inst.decided, 16, "instance {j}: every agent sees k votes");
            assert!(inst.rounds_to_decision.is_some(), "instance {j} decided");
            assert!(inst.metrics.messages_sent > 0);
        }
        assert!(report.legacy.is_none(), "rumor instance 0 has no legacy view");
    }

    #[test]
    fn consensus_instances_each_reach_consensus() {
        let cfg = RunConfig::builder(24)
            .colors(vec![12, 12])
            .instances(InstancePlan::consensus(3))
            .build();
        let report = run_plane(&cfg, 11);
        for (j, inst) in report.instances.iter().enumerate() {
            let outcome = inst.outcome.as_ref().expect("consensus instance");
            assert!(outcome.is_consensus(), "instance {j}: {outcome:?}");
            assert_eq!(inst.decided, 24);
        }
        // Different instance seeds: the three winners are not forced equal,
        // but each instance's initial colors respect the config's counts.
        assert!(report.legacy.is_some());
    }

    #[test]
    fn staggered_instances_finish_on_their_own_clocks() {
        let window = RunConfig::builder(16).build().params().total_rounds();
        let plan = InstancePlan {
            specs: vec![
                InstanceSpec::new(InstanceKind::RumorVote { k: 12 }),
                InstanceSpec::new(InstanceKind::RumorVote { k: 12 }).start_at(5),
            ],
            send_budget: None,
        };
        let cfg = RunConfig::builder(16).instances(plan).build();
        let report = run_plane(&cfg, 3);
        assert_eq!(report.rounds, window + 5, "engine covers the staggered window");
        for inst in &report.instances {
            assert_eq!(inst.decided, 16);
        }
    }

    #[test]
    fn send_budget_priority_classes_skew_latency() {
        // 6 rumor instances, half Low priority, 2 ops/node/round: High
        // instances must decide no later on average than Low ones.
        let k = 12;
        let mut plan = InstancePlan { specs: Vec::new(), send_budget: Some(2) };
        for j in 0..6 {
            let prio = if j < 3 { Priority::High } else { Priority::Low };
            plan.specs
                .push(InstanceSpec::new(InstanceKind::RumorVote { k }).priority(prio));
        }
        let cfg = RunConfig::builder(16).instances(plan).build();
        let report = run_plane(&cfg, 19);
        let mean = |range: std::ops::Range<usize>| {
            let rs: Vec<usize> = range
                .filter_map(|j| report.instances[j].rounds_to_decision)
                .collect();
            assert!(!rs.is_empty(), "at least one instance in the class decided");
            rs.iter().sum::<usize>() as f64 / rs.len() as f64
        };
        assert!(
            mean(0..3) <= mean(3..6),
            "High-priority instances should not be slower than Low"
        );
    }

    #[test]
    fn per_instance_meters_are_cohosting_invariant_under_loss() {
        // Instance reports (decisions, rounds, payload meters) for
        // instances 0 and 1 must be identical whether or not instance 2
        // rides along — per-instance loss streams and seeds are keyed by
        // instance index, never by plan size.
        let mk = |count: usize| {
            let cfg = RunConfig::builder(16)
                .instances(InstancePlan::rumor(count, 12))
                .message_loss(0.25)
                .build();
            run_plane(&cfg, 23)
        };
        let two = mk(2);
        let three = mk(3);
        for j in 0..2 {
            assert_eq!(
                format!("{:?}", two.instances[j]),
                format!("{:?}", three.instances[j]),
                "instance {j} perturbed by a co-hosted instance"
            );
        }
        // The third instance actually did traffic (the plans differ).
        assert!(three.instances[2].metrics.messages_sent > 0);
    }

    #[test]
    fn plane_rejects_op_log_audits() {
        let cfg = RunConfig::builder(8)
            .record_ops(true)
            .instances(InstancePlan::rumor(2, 4))
            .build();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_plane(&cfg, 1)));
        assert!(err.is_err(), "record_ops must be rejected on the plane");
    }
}
