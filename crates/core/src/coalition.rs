//! Coalition coordination state.
//!
//! The paper's deviating coalition `C` is a set of up to `t` agents that
//! may coordinate arbitrarily *before* the run (choose a joint strategy)
//! and share whatever they observe *during* the run. We model the latter
//! with a shared blackboard: every coalition agent holds an
//! `Arc<CoalitionCore>` and reads/writes the interior-mutable [`Intel`]
//! pool through [`CoalitionCore::intel`].
//!
//! The blackboard is `Arc<Mutex<…>>` (it was `Rc<RefCell<…>>` until the
//! staged round engine landed) so coalition agents satisfy the `Send`
//! bound the sharded engine places on every [`crate::AgentSlot`]. The
//! lock is uncontended on the adversary harness's sequential path, so
//! the swap costs an atomic pair per intel access. Note that coalition
//! intel is *order-dependent* cross-agent state: adversary trials must
//! keep running on the sequential engine (the default) — the sharded
//! engine is for honest large-`n` runs, and sharding a coalition run
//! would make the intel interleaving depend on shard scheduling.

use gossip_net::ids::{AgentId, ColorId};
use crate::msg::IntentList;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Shared knowledge pool sustained by coalition members during a run.
#[derive(Debug, Default)]
pub struct Intel {
    /// Vote-intention lists learned by pulling non-members during the
    /// Commitment phase: `(owner, H_owner)`.
    pub learned_intents: Vec<(AgentId, IntentList)>,
    /// Sum (mod `m`) of all *known* vote values addressed to the leader:
    /// filled in by spies, consumed by vote-tuners.
    pub known_sum_for_leader: u64,
    /// Number of distinct agents whose intentions the coalition knows.
    pub coverage: usize,
    /// Set by a member that has finalized tuned intentions, so later
    /// members account for the already-planned contribution.
    pub planned_tuned_votes: u64,
    /// A certificate chosen by the coalition to promote (forged or
    /// suppressed-second-minimum), if the strategy uses one.
    pub promoted_cert: Option<crate::Certificate>,
}

/// An immutable description of the coalition plus the shared blackboard.
#[derive(Debug)]
pub struct CoalitionCore {
    /// Sorted member ids.
    pub members: Vec<AgentId>,
    /// The designated beneficiary (the member whose color the coalition
    /// pushes; by convention the lowest id).
    pub leader: AgentId,
    /// The color the coalition wants to win.
    pub color: ColorId,
    /// Shared mutable intel (access via [`CoalitionCore::intel`]).
    pub intel: Mutex<Intel>,
}

/// Shared handle to the coalition state.
pub type Coalition = Arc<CoalitionCore>;

/// Build a coalition over `members` (must be non-empty and sorted) that
/// pushes `color`.
pub fn new_coalition(mut members: Vec<AgentId>, color: ColorId) -> Coalition {
    assert!(!members.is_empty(), "a coalition needs at least one member");
    members.sort_unstable();
    members.dedup();
    let leader = members[0];
    Arc::new(CoalitionCore {
        members,
        leader,
        color,
        intel: Mutex::new(Intel::default()),
    })
}

impl CoalitionCore {
    /// Lock the shared intel pool (no poisoning: a panicked writer's
    /// partial state is taken as-is, matching the old `RefCell` behavior
    /// where a panic aborted the trial anyway).
    pub fn intel(&self) -> MutexGuard<'_, Intel> {
        self.intel.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Is `u` a member?
    pub fn contains(&self, u: AgentId) -> bool {
        self.members.binary_search(&u).is_ok()
    }

    /// Coalition size `|C|`.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// How coalition members are selected from `[n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalitionSelection {
    /// The `t` lowest ids — the adversarially interesting choice for
    /// naive min-id protocols.
    LowIds,
    /// `t` evenly spread ids.
    Spread,
    /// A seeded random `t`-subset.
    Random,
}

/// Pick `t` coalition member ids from `n` agents.
pub fn select_members(n: usize, t: usize, sel: CoalitionSelection, seed: u64) -> Vec<AgentId> {
    assert!(t >= 1 && t < n, "coalition size must be in [1, n)");
    match sel {
        CoalitionSelection::LowIds => (0..t as AgentId).collect(),
        CoalitionSelection::Spread => {
            let stride = n / t;
            (0..t).map(|i| (i * stride) as AgentId).collect()
        }
        CoalitionSelection::Random => {
            let mut rng = gossip_net::rng::DetRng::seeded(seed, 0xC0A1);
            let mut ids: Vec<AgentId> = (0..n as AgentId).collect();
            rng.shuffle(&mut ids);
            let mut chosen: Vec<AgentId> = ids[..t].to_vec();
            chosen.sort_unstable();
            chosen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalition_basics() {
        let c = new_coalition(vec![5, 2, 9, 2], 3);
        assert_eq!(c.members, vec![2, 5, 9]);
        assert_eq!(c.leader, 2);
        assert_eq!(c.color, 3);
        assert_eq!(c.size(), 3);
        assert!(c.contains(5));
        assert!(!c.contains(4));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_coalition_rejected() {
        let _ = new_coalition(vec![], 0);
    }

    #[test]
    fn intel_is_shared_between_handles() {
        let c = new_coalition(vec![0, 1], 0);
        let c2 = Arc::clone(&c);
        c.intel().known_sum_for_leader = 42;
        assert_eq!(c2.intel().known_sum_for_leader, 42);
    }

    #[test]
    fn select_low_ids() {
        assert_eq!(select_members(10, 3, CoalitionSelection::LowIds, 0), vec![0, 1, 2]);
    }

    #[test]
    fn select_spread_is_spread() {
        let m = select_members(100, 4, CoalitionSelection::Spread, 0);
        assert_eq!(m, vec![0, 25, 50, 75]);
    }

    #[test]
    fn select_random_is_seeded_and_valid() {
        let a = select_members(50, 10, CoalitionSelection::Random, 7);
        let b = select_members(50, 10, CoalitionSelection::Random, 7);
        let c = select_members(50, 10, CoalitionSelection::Random, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        assert!(a.iter().all(|&x| (x as usize) < 50));
    }

    #[test]
    #[should_panic(expected = "coalition size")]
    fn select_rejects_full_coalition() {
        let _ = select_members(5, 5, CoalitionSelection::LowIds, 0);
    }
}
