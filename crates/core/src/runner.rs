//! Orchestration: configure, build, drive, and report on protocol runs.
//!
//! [`RunConfig`] captures everything that defines an experiment instance —
//! network size, `γ`, the initial color configuration, fault fraction and
//! placement, parameter ablations. [`run_protocol`] executes one fully
//! honest run on the monomorphic agent plane; [`build_network_slots`] +
//! [`drive_network`] + [`collect_report`] expose the pieces so the
//! adversary harness can inject deviating agents into the same pipeline.
//!
//! ## The trial arena
//!
//! Monte-Carlo loops should hold a [`TrialArena`] per worker and call
//! [`TrialArena::run_protocol`] / [`TrialArena::run_with`] per trial: the
//! arena keeps one `Network<Msg, AgentSlot>` alive and re-arms it in
//! place ([`Network::reset_into`]), so the per-trial cost is re-seeding
//! agent state, not reallocating agent storage, scratch buffers, metrics
//! and op-log. `run_protocol(cfg, seed)` and
//! `arena.run_protocol(cfg, seed)` return bit-identical reports.
//!
//! The legacy boxed pipeline ([`build_network`] over
//! `Box<dyn ConsensusAgent>` factories, [`run_protocol_boxed`]) is kept
//! as the dyn-dispatch comparison arm for benchmarks and equivalence
//! tests — and as the fully dynamic escape hatch.
//!
//! Determinism: every run is a pure function of `(RunConfig, seed)`. The
//! master seed is split into independent streams for color assignment,
//! fault placement, and each agent's private coins.

use crate::agent_plane::AgentSlot;
use crate::audit::{audit_good_execution, GoodExecutionReport};
use crate::engine::{ConsensusAgent, HonestAgent, ProtocolCore, Role, VerifyFailure};
use crate::msg::Msg;
use crate::outcome::{combine_decisions, Decision, Outcome};
use crate::params::{Params, Phase};
use gossip_net::agent::Agent;
use gossip_net::dynamics::{LossSchedule, ScenarioScript};
use gossip_net::fault::{FaultPlan, Placement};
use gossip_net::ids::{AgentId, ColorId};
use gossip_net::metrics::Metrics;
use gossip_net::network::{Network, NetworkConfig, StageTimes};
use gossip_net::rng::{DetRng, RngDiscipline};
use gossip_net::size::SizeEnv;
use gossip_net::topology::Topology;

/// RNG stream labels: one sub-stream per independent randomness consumer.
/// Public so external drivers — the instance plane replicating the legacy
/// per-agent streams for its instance 0, or the `rfc-node` lockstep
/// session rebuilding a run's agents outside the simulator — derive the
/// exact same randomness from `(seed, stream)`.
pub mod streams {
    /// Color-assignment permutation stream.
    pub const COLORS: u64 = 0x01;
    /// Fault-placement stream.
    pub const FAULTS: u64 = 0x02;
    /// Message-loss process stream.
    pub const LOSS: u64 = 0x03;
    /// Agent `i`'s private stream is `AGENT_BASE + i`.
    pub const AGENT_BASE: u64 = 0x1000;
}

/// How initial colors are assigned to agents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColorSpec {
    /// `counts[c]` agents get color `c`; the assignment to ids is a
    /// seeded random permutation. Counts must sum to `n`.
    Counts(Vec<usize>),
    /// Fair leader election: every agent's color is its own id.
    LeaderElection,
    /// Explicit per-agent colors (id-indexed; length must equal `n`).
    /// Used by the adversary harness to pin coalition colors.
    Explicit(Vec<ColorId>),
    /// All agents share color 0 (degenerate sanity case).
    Uniform,
}

/// Network topology selector (complete graph unless testing extensions).
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// The paper's setting: the complete graph `K_n`.
    Complete,
    /// Erdős–Rényi `G(n, p)`.
    ErdosRenyi {
        /// Edge probability.
        p: f64,
    },
    /// Random `d`-regular graph.
    RandomRegular {
        /// Vertex degree.
        d: usize,
    },
    /// The cycle `C_n` (worst case for rumor spreading).
    Ring,
}

/// Everything defining one protocol-run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Number of agents `n`.
    pub n: usize,
    /// The constant `γ` in `q = γ·log₂ n`.
    pub gamma: f64,
    /// Override the vote-space size `m` (default `n³`; E11 ablation).
    pub m_override: Option<u64>,
    /// Override the per-phase round budget `q`.
    pub q_override: Option<usize>,
    /// Initial color configuration.
    pub colors: ColorSpec,
    /// Fraction `α` of faulty agents.
    pub fault_fraction: f64,
    /// Where the adversary places the faults.
    pub fault_placement: Placement,
    /// Topology (complete graph in the paper).
    pub topology: TopologySpec,
    /// Record the operation log and produce a good-execution audit.
    pub record_ops: bool,
    /// Verification checks the verifier's own sent votes too (paper-implied
    /// refinement; disable for the E11 ablation).
    pub check_self_votes: bool,
    /// Disable the Coherence phase (E11 ablation: equivocation becomes
    /// undetectable and coalition attacks succeed).
    pub skip_coherence: bool,
    /// Disable ledger verification (E11 ablation: fake-min attacks win).
    pub skip_verification: bool,
    /// Per-message drop probability (failure injection, E13; the paper's
    /// model assumes reliable channels, i.e. 0.0).
    pub loss_probability: f64,
    /// Time-varying loss schedule; overrides `loss_probability` when
    /// set. `None` is the static path.
    pub loss_schedule: Option<LossSchedule>,
    /// Timed adversity events (churn, partitions; E15). The empty
    /// script is the static path, bit-identical to the pre-dynamics
    /// engine.
    pub scenario: ScenarioScript,
    /// Loss-draw discipline (see [`RngDiscipline`]). `Sequential` (the
    /// default) runs the monolithic engine when `threads == 1` and
    /// otherwise the staged engine's legacy-replay path — either way
    /// bit-identical to every historical digest. `PerAgent` selects the
    /// sharded engine's own discipline, whose digests are pinned by
    /// their own golden rows.
    pub rng_discipline: RngDiscipline,
    /// Worker threads for intra-trial sharding (`0` = available
    /// parallelism, `1` = fully sequential). A pure throughput knob:
    /// the report is bit-identical for every value — *for agents whose
    /// handlers touch only their own state*, which every slot satisfies
    /// except coalition deviators (shared intel). The adversary harness
    /// therefore forces attack trials onto the sequential engine
    /// regardless of this field.
    pub threads: usize,
    /// Minimum agents per shard before an extra shard pays for itself
    /// (the small-`n` "sharding cliff" guard). `None` uses the tuned
    /// default [`gossip_net::MIN_AGENTS_PER_SHARD`]; `Some(0)` disables
    /// the floor (tests that must exercise real multi-shard execution at
    /// tiny `n` set this); `Some(k)` sets a custom floor. Under
    /// `Sequential` a floor that leaves fewer than two shards drops the
    /// run to the monolithic engine outright; under `PerAgent` it clamps
    /// the effective shard count. Both are digest-invariant (the staged
    /// engine is thread-invariant and, under `Sequential`, replays the
    /// monolithic engine bit for bit), so this is a pure throughput
    /// knob — checkpoint fingerprints normalize it away like `threads`.
    pub shard_floor: Option<usize>,
    /// Collect the per-stage wall-clock breakdown
    /// ([`RunReport::stage_times`]). Observability only: timing reads
    /// the clock but never feeds back into execution, so digests are
    /// unaffected. Only the staged engine is instrumented; monolithic
    /// runs report `None`.
    pub time_stages: bool,
    /// Autotune the shard count per phase: each communicating phase
    /// probes the power-of-two shard counts up to `threads` for a few
    /// rounds and runs the rest at the fastest
    /// ([`gossip_net::Network::run_staged_autotuned`]). Pull-heavy
    /// phases (Find-Min, Commitment) and push-heavy ones (Voting) hit
    /// their sharding cliffs at different counts, so one fixed count
    /// leaves throughput on the table. A pure throughput knob — the
    /// tuner only ever moves `threads`, which is thread-invariant, so
    /// digests are unaffected and checkpoint fingerprints normalize it
    /// away like `threads` itself. The chosen schedule is reported in
    /// [`RunReport::shard_schedule`]. Ignored on the monolithic path.
    pub autotune_shards: bool,
    /// Concurrent protocol instances multiplexed over the network (the
    /// instance plane, `crate::instances`). The default — one consensus
    /// instance starting at round 0 — is what every legacy entry point
    /// ([`run_protocol`], [`TrialArena`], …) executes; those paths ignore
    /// this field entirely, while [`crate::instances::run_plane`] consumes
    /// it. Part of [`RunConfig`]'s `Debug` form, so checkpoint config
    /// fingerprints cover the instance plan automatically.
    pub instances: crate::instances::InstancePlan,
}

impl RunConfig {
    /// Start building a config for `n` agents (γ = 3, two equal colors,
    /// no faults, complete graph).
    pub fn builder(n: usize) -> RunConfigBuilder {
        RunConfigBuilder::new(n)
    }

    /// The derived protocol parameters.
    pub fn params(&self) -> Params {
        let mut p = Params::new(self.n, self.gamma);
        if let Some(m) = self.m_override {
            p = p.with_m(m);
        }
        if let Some(q) = self.q_override {
            p = p.with_q(q);
        }
        if !self.check_self_votes {
            p = p.without_self_vote_check();
        }
        p
    }

    /// Build the topology instance (seeded for the random families).
    pub fn topology(&self, seed: u64) -> Topology {
        match &self.topology {
            TopologySpec::Complete => Topology::complete(self.n),
            TopologySpec::ErdosRenyi { p } => Topology::erdos_renyi(self.n, *p, seed),
            TopologySpec::RandomRegular { d } => Topology::random_regular(self.n, *d, seed),
            TopologySpec::Ring => Topology::ring(self.n),
        }
    }

    /// Assign initial colors (seeded permutation for `Counts`).
    pub fn assign_colors(&self, seed: u64) -> Vec<ColorId> {
        match &self.colors {
            ColorSpec::Uniform => vec![0; self.n],
            ColorSpec::LeaderElection => (0..self.n as ColorId).collect(),
            ColorSpec::Explicit(colors) => {
                assert_eq!(colors.len(), self.n, "explicit colors must cover all agents");
                colors.clone()
            }
            ColorSpec::Counts(counts) => {
                let total: usize = counts.iter().sum();
                assert_eq!(
                    total, self.n,
                    "color counts must sum to n ({total} != {})",
                    self.n
                );
                let mut colors: Vec<ColorId> = counts
                    .iter()
                    .enumerate()
                    .flat_map(|(c, &k)| std::iter::repeat_n(c as ColorId, k))
                    .collect();
                let mut rng = DetRng::seeded(seed, streams::COLORS);
                rng.shuffle(&mut colors);
                colors
            }
        }
    }

    /// Build the fault plan.
    pub fn fault_plan(&self, seed: u64) -> FaultPlan {
        if self.fault_fraction <= 0.0 {
            FaultPlan::none(self.n)
        } else {
            let placement = match self.fault_placement {
                Placement::Random { .. } => Placement::Random {
                    seed: gossip_net::rng::derive_seed(seed, streams::FAULTS),
                },
                other => other,
            };
            FaultPlan::fraction(self.n, self.fault_fraction, placement)
        }
    }
}

/// Fluent builder for [`RunConfig`].
#[derive(Debug, Clone)]
pub struct RunConfigBuilder {
    cfg: RunConfig,
}

impl RunConfigBuilder {
    fn new(n: usize) -> Self {
        RunConfigBuilder {
            cfg: RunConfig {
                n,
                gamma: 3.0,
                m_override: None,
                q_override: None,
                colors: ColorSpec::Counts(vec![n - n / 2, n / 2]),
                fault_fraction: 0.0,
                fault_placement: Placement::Random { seed: 0 },
                topology: TopologySpec::Complete,
                record_ops: false,
                check_self_votes: true,
                skip_coherence: false,
                skip_verification: false,
                loss_probability: 0.0,
                loss_schedule: None,
                scenario: ScenarioScript::new(),
                rng_discipline: RngDiscipline::Sequential,
                threads: 1,
                shard_floor: None,
                time_stages: false,
                autotune_shards: false,
                instances: crate::instances::InstancePlan::single_consensus(),
            },
        }
    }

    /// Set `γ` (per-phase budget `q = γ·log₂ n`).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.cfg.gamma = gamma;
        self
    }

    /// Set color counts (must sum to `n`).
    pub fn colors(mut self, counts: Vec<usize>) -> Self {
        self.cfg.colors = ColorSpec::Counts(counts);
        self
    }

    /// Fair leader election mode: every agent supports its own id.
    pub fn leader_election(mut self) -> Self {
        self.cfg.colors = ColorSpec::LeaderElection;
        self
    }

    /// Explicit per-agent colors (id-indexed).
    pub fn explicit_colors(mut self, colors: Vec<ColorId>) -> Self {
        self.cfg.colors = ColorSpec::Explicit(colors);
        self
    }

    /// Fault a fraction `α` of agents with the given placement.
    pub fn faults(mut self, alpha: f64, placement: Placement) -> Self {
        self.cfg.fault_fraction = alpha;
        self.cfg.fault_placement = placement;
        self
    }

    /// Override the vote-space size `m`.
    pub fn m(mut self, m: u64) -> Self {
        self.cfg.m_override = Some(m);
        self
    }

    /// Override the phase budget `q`.
    pub fn q(mut self, q: usize) -> Self {
        self.cfg.q_override = Some(q);
        self
    }

    /// Select a non-complete topology.
    pub fn topology(mut self, t: TopologySpec) -> Self {
        self.cfg.topology = t;
        self
    }

    /// Record the op log and produce a good-execution audit.
    pub fn record_ops(mut self, yes: bool) -> Self {
        self.cfg.record_ops = yes;
        self
    }

    /// Toggle the self-vote verification refinement.
    pub fn check_self_votes(mut self, yes: bool) -> Self {
        self.cfg.check_self_votes = yes;
        self
    }

    /// Ablation: drop the Coherence phase.
    pub fn skip_coherence(mut self, yes: bool) -> Self {
        self.cfg.skip_coherence = yes;
        self
    }

    /// Ablation: drop ledger verification.
    pub fn skip_verification(mut self, yes: bool) -> Self {
        self.cfg.skip_verification = yes;
        self
    }

    /// Failure injection: independent per-message drop probability.
    pub fn message_loss(mut self, p: f64) -> Self {
        self.cfg.loss_probability = p;
        self
    }

    /// Time-varying loss: a piecewise-constant schedule (overrides
    /// [`Self::message_loss`]).
    pub fn loss_schedule(mut self, schedule: LossSchedule) -> Self {
        self.cfg.loss_schedule = Some(schedule);
        self
    }

    /// Dynamic adversity: a scripted timeline of crash/recover/
    /// partition/heal events applied by the network before each round.
    pub fn scenario(mut self, script: ScenarioScript) -> Self {
        self.cfg.scenario = script;
        self
    }

    /// Select the loss-draw discipline (see [`RngDiscipline`]).
    pub fn rng_discipline(mut self, d: RngDiscipline) -> Self {
        self.cfg.rng_discipline = d;
        self
    }

    /// Intra-trial worker threads (`0` = available parallelism). Results
    /// are bit-identical for every value; see [`RunConfig::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Convenience: the sharded engine preset — [`RngDiscipline::PerAgent`]
    /// with `threads` plan/apply shards (`0` = available parallelism).
    pub fn sharded(self, threads: usize) -> Self {
        self.rng_discipline(RngDiscipline::PerAgent).threads(threads)
    }

    /// Override the minimum agents-per-shard floor (`0` disables it);
    /// see [`RunConfig::shard_floor`].
    pub fn shard_floor(mut self, floor: usize) -> Self {
        self.cfg.shard_floor = Some(floor);
        self
    }

    /// Collect the per-stage wall-clock breakdown into
    /// [`RunReport::stage_times`].
    pub fn time_stages(mut self, on: bool) -> Self {
        self.cfg.time_stages = on;
        self
    }

    /// Autotune the shard count per phase; see
    /// [`RunConfig::autotune_shards`].
    pub fn autotune_shards(mut self, on: bool) -> Self {
        self.cfg.autotune_shards = on;
        self
    }

    /// Set the instance plan consumed by [`crate::instances::run_plane`]
    /// (legacy single-run entry points ignore it).
    pub fn instances(mut self, plan: crate::instances::InstancePlan) -> Self {
        self.cfg.instances = plan;
        self
    }

    /// Finish building.
    pub fn build(self) -> RunConfig {
        self.cfg
    }
}

/// Result of one protocol run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Global outcome.
    pub outcome: Outcome,
    /// Communicating rounds executed (`4q` for the sync schedule).
    pub rounds: usize,
    /// Wire metrics (messages, bits, per-phase tallies).
    pub metrics: Metrics,
    /// Owner of the agreed certificate, if consensus was reached.
    pub winner: Option<AgentId>,
    /// Per-agent terminal status (id-indexed). Under a dynamic scenario
    /// an agent still crashed at finalization is reported
    /// [`Decision::Faulty`], exactly like a plan-permanent fault — the
    /// outcome is defined over the **survivor set**.
    pub decisions: Vec<Decision>,
    /// Initial colors (id-indexed).
    pub initial_colors: Vec<ColorId>,
    /// Number of agents active **at finalization** (the survivor set:
    /// plan-active and not crashed, or crashed-and-recovered). Equals
    /// the plan's active count for static runs; validity and fairness
    /// ([`Self::active_fraction`]) are measured over this set.
    pub n_active: usize,
    /// Per-agent failure diagnostics (id-indexed; `None` = did not fail).
    pub verify_failures: Vec<Option<VerifyFailure>>,
    /// Good-execution audit (present when `record_ops` was set).
    pub audit: Option<GoodExecutionReport>,
    /// Cumulative per-stage wall-clock breakdown (present when
    /// [`RunConfig::time_stages`] was set and the run took the staged
    /// engine). Observability only — never part of a digest.
    pub stage_times: Option<StageTimes>,
    /// Per-phase shard counts the autotuner settled on (present when
    /// [`RunConfig::autotune_shards`] was set and the run took the
    /// staged engine), in phase order. Observability only — a pure
    /// throughput outcome, never part of a digest.
    pub shard_schedule: Option<Vec<(String, usize)>>,
}

impl RunReport {
    /// Count the honest-agent failure kinds of this run (diagnostics for
    /// attack experiments: which check caught the deviation?).
    pub fn failure_histogram(&self) -> Vec<(VerifyFailure, usize)> {
        let mut out: Vec<(VerifyFailure, usize)> = Vec::new();
        for vf in self.verify_failures.iter().flatten() {
            if let Some(e) = out.iter_mut().find(|(k, _)| k == vf) {
                e.1 += 1;
            } else {
                out.push((*vf, 1));
            }
        }
        out
    }

    /// Ids of the agents active at finalization (the survivor set the
    /// outcome was combined over).
    pub fn survivors(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| !matches!(d, Decision::Faulty))
            .map(|(i, _)| i as AgentId)
    }

    /// Fraction of *surviving* agents initially supporting `c` — the
    /// fairness target probability for color `c`.
    pub fn active_fraction(&self, c: ColorId) -> f64 {
        if self.n_active == 0 {
            return 0.0;
        }
        let cnt = self
            .decisions
            .iter()
            .zip(&self.initial_colors)
            .filter(|(d, &col)| !matches!(d, Decision::Faulty) && col == c)
            .count();
        cnt as f64 / self.n_active as f64
    }
}

/// Factory signature used to construct each agent: receives the agent's
/// id, protocol parameters, initial color, private RNG stream, and the
/// run topology (so intention targets can respect sparse graphs).
///
/// This is the *boxed* factory of the legacy dyn-dispatch pipeline; new
/// code should prefer [`SlotFactory`].
pub type AgentFactory<'a> =
    dyn FnMut(AgentId, Params, ColorId, DetRng, &Topology) -> Box<dyn ConsensusAgent> + 'a;

/// Factory for the monomorphic agent plane: like [`AgentFactory`] but
/// producing [`AgentSlot`]s, so built-in agents avoid boxing entirely and
/// only [`AgentSlot::Custom`] pays for dynamism.
pub type SlotFactory<'a> =
    dyn FnMut(AgentId, Params, ColorId, DetRng, &Topology) -> AgentSlot + 'a;

/// Everything derived from `(cfg, seed)` that a network build needs.
/// Crate-visible so `crate::checkpoint` can rebuild the immutable
/// ingredients on restore instead of serializing them.
pub(crate) fn network_ingredients(
    cfg: &RunConfig,
    seed: u64,
) -> (Params, Vec<ColorId>, FaultPlan, Topology, SizeEnv, NetworkConfig) {
    let params = cfg.params();
    let colors = cfg.assign_colors(seed);
    let faults = cfg.fault_plan(seed);
    let topology = cfg.topology(seed);
    let env = SizeEnv::with_params(cfg.n, params.m, params.q, color_space_size(cfg));
    let net_cfg = NetworkConfig {
        record_ops: cfg.record_ops,
        loss_probability: cfg.loss_probability,
        loss_seed: gossip_net::rng::derive_seed(seed, streams::LOSS),
        loss_schedule: cfg.loss_schedule.clone(),
        scenario: cfg.scenario.clone(),
        rng_discipline: cfg.rng_discipline,
        threads: cfg.threads,
        shard_floor: resolved_shard_floor(cfg),
        time_stages: cfg.time_stages,
        ..NetworkConfig::default()
    };
    (params, colors, faults, topology, env, net_cfg)
}

/// The effective agents-per-shard floor: the run's override, or the
/// tuned [`gossip_net::MIN_AGENTS_PER_SHARD`] default.
pub(crate) fn resolved_shard_floor(cfg: &RunConfig) -> usize {
    cfg.shard_floor.unwrap_or(gossip_net::MIN_AGENTS_PER_SHARD)
}

/// Shared engine choice for [`drive_network`] and the checkpoint driver.
///
/// `Sequential` + `threads == 1` (the default config) is the monolithic
/// [`Network::step`] path — the literal pre-staged code, so every
/// historical digest is untouched. `Sequential` with more threads takes
/// the staged legacy-replay path *unless* the shard floor leaves fewer
/// than two shards, in which case staging is pure overhead and the run
/// falls back to the monolithic engine — bit-identical either way, since
/// staged `Sequential` replays the monolithic engine draw for draw. Any
/// `PerAgent` config takes the staged engine (its floor is applied
/// inside the network as a shard-count clamp, which the discipline's
/// thread-invariance makes unobservable).
pub(crate) fn use_staged_engine(cfg: &RunConfig) -> bool {
    if cfg.rng_discipline != RngDiscipline::Sequential {
        return true;
    }
    if cfg.threads == 1 {
        return false;
    }
    let floor = resolved_shard_floor(cfg);
    floor == 0 || cfg.n / floor >= 2
}

/// Push the `n` per-trial agents (fresh RNG stream each) into `agents`.
fn fill_agents<A>(
    agents: &mut Vec<A>,
    cfg: &RunConfig,
    seed: u64,
    params: Params,
    colors: &[ColorId],
    topology: &Topology,
    factory: &mut dyn FnMut(AgentId, Params, ColorId, DetRng, &Topology) -> A,
) {
    agents.reserve(cfg.n);
    for i in 0..cfg.n {
        let rng = DetRng::seeded(seed, streams::AGENT_BASE + i as u64);
        agents.push(factory(i as AgentId, params, colors[i], rng, topology));
    }
}

/// Build a ready-to-run network with custom agent construction (legacy
/// boxed pipeline; see [`build_network_slots`] for the fast path).
pub fn build_network(
    cfg: &RunConfig,
    seed: u64,
    factory: &mut AgentFactory,
) -> Network<Msg, Box<dyn ConsensusAgent>> {
    let (params, colors, faults, topology, env, net_cfg) = network_ingredients(cfg, seed);
    let mut agents: Vec<Box<dyn ConsensusAgent>> = Vec::new();
    fill_agents(&mut agents, cfg, seed, params, &colors, &topology, factory);
    Network::with_config(topology, env, agents, faults, net_cfg)
}

/// Build a ready-to-run network on the monomorphic agent plane.
pub fn build_network_slots(
    cfg: &RunConfig,
    seed: u64,
    factory: &mut SlotFactory,
) -> Network<Msg, AgentSlot> {
    let (params, colors, faults, topology, env, net_cfg) = network_ingredients(cfg, seed);
    let mut agents: Vec<AgentSlot> = Vec::new();
    fill_agents(&mut agents, cfg, seed, params, &colors, &topology, factory);
    Network::with_config(topology, env, agents, faults, net_cfg)
}

/// The honest [`SlotFactory`]: every agent runs protocol `P` on the
/// synchronous schedule.
pub fn honest_slot_factory(
    id: AgentId,
    params: Params,
    color: ColorId,
    rng: DetRng,
    topo: &Topology,
) -> AgentSlot {
    AgentSlot::honest(ProtocolCore::new_on(topo, id, params, params.sync_schedule(), color, rng))
}

/// A reusable per-worker simulation arena (see the module docs).
///
/// Holds one slot-typed network across trials and re-arms it in place, so
/// steady-state trials reuse the agent vector, the op/reply scratch
/// buffers, the metrics phase table and the op-log event buffer instead
/// of reallocating them. Dropping the arena frees everything.
#[derive(Default)]
pub struct TrialArena {
    net: Option<Network<Msg, AgentSlot>>,
}

impl TrialArena {
    /// An empty arena (the first trial builds the network).
    pub fn new() -> Self {
        TrialArena { net: None }
    }

    /// Run one fully honest trial in the arena. Bit-identical to
    /// [`run_protocol`] for the same `(cfg, seed)`.
    pub fn run_protocol(&mut self, cfg: &RunConfig, seed: u64) -> RunReport {
        self.run_with(cfg, seed, &mut honest_slot_factory)
    }

    /// Run one trial with custom agent construction (the adversary
    /// harness plugs deviating slots in here).
    pub fn run_with(&mut self, cfg: &RunConfig, seed: u64, factory: &mut SlotFactory) -> RunReport {
        let (params, colors, faults, topology, env, net_cfg) = network_ingredients(cfg, seed);
        match &mut self.net {
            Some(net) => {
                net.reset_into(topology, env, faults, net_cfg, |agents, topo| {
                    fill_agents(agents, cfg, seed, params, &colors, topo, factory);
                });
            }
            None => {
                let mut agents: Vec<AgentSlot> = Vec::new();
                fill_agents(&mut agents, cfg, seed, params, &colors, &topology, factory);
                self.net = Some(Network::with_config(topology, env, agents, faults, net_cfg));
            }
        }
        let net = self.net.as_mut().expect("arena network just ensured");
        let schedule = drive_network(net, cfg);
        let mut report = collect_report(net, cfg);
        report.shard_schedule = schedule;
        report
    }
}

fn color_space_size(cfg: &RunConfig) -> usize {
    match &cfg.colors {
        ColorSpec::Counts(c) => c.len().max(2),
        ColorSpec::LeaderElection => cfg.n,
        ColorSpec::Uniform => 2,
        ColorSpec::Explicit(colors) => {
            colors.iter().map(|&c| c as usize + 1).max().unwrap_or(2).max(2)
        }
    }
}

/// Drive all four communicating phases (with metrics phase labels) and
/// finalize (Verification). Respects the `skip_coherence` ablation by
/// fast-forwarding the phase window without executing it.
///
/// Generic over the agent representation: the same driver serves the
/// monomorphic [`AgentSlot`] plane and the boxed escape hatch (every
/// [`crate::ConsensusAgent`] is `Send`, which is what lets one driver
/// serve both the monolithic and the staged engine).
///
/// Engine selection is [`use_staged_engine`]: the default config
/// (`Sequential`, `threads == 1`) and small-`n` `Sequential` runs below
/// the shard floor take the monolithic [`Network::step`] path — the
/// literal pre-staged code, so every historical digest (including the
/// PR-4 golden corpus) is untouched. Everything else takes the staged
/// engine, which is itself bit-identical to the monolithic path under
/// `Sequential` and bit-identical across thread counts always.
///
/// Also generic over the *message* type: the instance plane drives a
/// `Network<Batch<InstPayload>, MuxAgent>` through this exact function on
/// its single-instance path, which is what pins its phase cadence (and
/// the metrics phase table) to the legacy one.
/// Returns the autotuner's per-phase shard schedule when
/// [`RunConfig::autotune_shards`] was set and the run took the staged
/// engine, `None` otherwise (throughput observability only — most
/// callers ignore it).
pub fn drive_network<M, A>(
    net: &mut Network<M, A>,
    cfg: &RunConfig,
) -> Option<Vec<(String, usize)>>
where
    M: gossip_net::size::MsgSize + Send + Sync,
    A: Agent<M> + Send,
{
    let params = cfg.params();
    let q = params.q;
    let staged = use_staged_engine(cfg);
    let candidates = (cfg.autotune_shards && staged).then(|| shard_candidates(cfg));
    let mut schedule = candidates.as_ref().map(|_| Vec::new());
    for phase in Phase::COMMUNICATING {
        if phase == Phase::Coherence && cfg.skip_coherence {
            // Ablation: the phase's rounds simply don't happen; agents
            // proceed to verification with whatever certificate they hold.
            break;
        }
        net.enter_phase(phase.name());
        if let (Some(cands), Some(sched)) = (&candidates, &mut schedule) {
            let chosen = net.run_staged_autotuned(q, cands);
            sched.push((phase.name().to_string(), chosen));
        } else if staged {
            net.run_staged(q);
        } else {
            net.run(q);
        }
    }
    net.finalize();
    schedule
}

/// The autotuner's candidate shard counts: the powers of two up to the
/// run's resolved thread budget (`threads == 0` means available
/// parallelism). The per-round [`RunConfig::shard_floor`] clamp still
/// applies on top, inside the network.
fn shard_candidates(cfg: &RunConfig) -> Vec<usize> {
    let max = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        cfg.threads
    };
    let mut cands = vec![1usize];
    let mut c = 2usize;
    while c <= max {
        cands.push(c);
        c *= 2;
    }
    cands
}

/// Extract a [`RunReport`] from a finished network.
///
/// The global outcome is the agreement reached by the *honest* active
/// agents: a deviator that refuses to terminate cannot nullify a
/// consensus the rest of the network reached (the coalition's utility is
/// determined by the color the network converges to — paper §3.2, where
/// the Winner is defined by the certificate held after Coherence).
///
/// Survivor-set accounting: "active" means active **at finalization**
/// ([`Network::fault_state`]), so scripted churn is reflected — an agent
/// still crashed at the end counts as [`Decision::Faulty`], one that
/// recovered counts by whatever it decided. For static runs this is the
/// plan's active set, unchanged.
pub fn collect_report<A: ConsensusAgent>(net: &Network<Msg, A>, cfg: &RunConfig) -> RunReport {
    let faults = net.fault_state();
    let mut decisions = Vec::with_capacity(net.n());
    let mut honest_decisions = Vec::with_capacity(net.n());
    let mut initial_colors = Vec::with_capacity(net.n());
    let mut verify_failures = Vec::with_capacity(net.n());
    let mut winner: Option<AgentId> = None;
    for id in 0..net.n() as AgentId {
        let agent = net.agent(id);
        let core = agent.core();
        initial_colors.push(core.color);
        verify_failures.push(core.verify_failure);
        let d = if faults.is_down(id) {
            Decision::Faulty
        } else {
            match effective_decision(core, cfg) {
                Some(c) => {
                    if winner.is_none() && agent.role() == Role::Honest {
                        winner = core.min_cert.as_ref().map(|ce| ce.owner);
                    }
                    Decision::Decided(c)
                }
                None => Decision::Failed,
            }
        };
        if agent.role() == Role::Honest {
            honest_decisions.push(d);
        }
        decisions.push(d);
    }
    let outcome = combine_decisions(&honest_decisions);
    if !outcome.is_consensus() {
        winner = None;
    }
    let audit = if cfg.record_ops {
        Some(audit_good_execution(net))
    } else {
        None
    };
    let stage_times = (cfg.time_stages && use_staged_engine(cfg)).then(|| net.stage_times());
    RunReport {
        outcome,
        rounds: net.round(),
        metrics: net.metrics().clone(),
        winner,
        decisions,
        initial_colors,
        n_active: faults.n_active(),
        verify_failures,
        audit,
        stage_times,
        shard_schedule: None,
    }
}

/// Apply the `skip_verification` ablation: when verification is disabled
/// an agent simply adopts its minimum certificate's color (even one that
/// would have failed the checks).
pub(crate) fn effective_decision(core: &ProtocolCore, cfg: &RunConfig) -> Option<ColorId> {
    if cfg.skip_verification {
        if core.failed && core.verify_failure != Some(crate::engine::VerifyFailure::FailedEarlier)
        {
            // Verification-type failures are bypassed by the ablation…
            return core.min_cert.as_ref().map(|c| c.color);
        }
        if core.failed {
            // …but Coherence failures still count (it is a separate phase).
            return None;
        }
        return core.min_cert.as_ref().map(|c| c.color);
    }
    core.decision()
}

/// Run protocol `P` with every agent honest, on the monomorphic agent
/// plane. The canonical entry point. (Monte-Carlo loops should prefer a
/// per-worker [`TrialArena`], which additionally reuses allocations
/// across trials; both produce bit-identical reports.)
pub fn run_protocol(cfg: &RunConfig, seed: u64) -> RunReport {
    let mut net = build_network_slots(cfg, seed, &mut honest_slot_factory);
    let schedule = drive_network(&mut net, cfg);
    let mut report = collect_report(&net, cfg);
    report.shard_schedule = schedule;
    report
}

/// [`run_protocol`] over the legacy boxed-dyn pipeline: rebuilds a
/// `Vec<Box<dyn ConsensusAgent>>` for the trial and dispatches every
/// agent call through a vtable. Kept as the comparison arm for the
/// `dispatch` benchmark and the dyn-vs-enum equivalence tests — it must
/// return a bit-identical [`RunReport`] for every `(cfg, seed)`.
pub fn run_protocol_boxed(cfg: &RunConfig, seed: u64) -> RunReport {
    let mut factory =
        |id: AgentId, params: Params, color: ColorId, rng: DetRng, topo: &Topology| {
            let core = ProtocolCore::new_on(topo, id, params, params.sync_schedule(), color, rng);
            Box::new(HonestAgent::new(core)) as Box<dyn ConsensusAgent>
        };
    let mut net = build_network(cfg, seed, &mut factory);
    let schedule = drive_network(&mut net, cfg);
    let mut report = collect_report(&net, cfg);
    report.shard_schedule = schedule;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_run_reaches_consensus() {
        let cfg = RunConfig::builder(32).gamma(3.0).colors(vec![16, 16]).build();
        let report = run_protocol(&cfg, 42);
        assert!(
            report.outcome.is_consensus(),
            "fault-free honest run must succeed: {:?}",
            report.outcome
        );
        assert_eq!(report.rounds, cfg.params().total_rounds());
        assert_eq!(report.n_active, 32);
    }

    #[test]
    fn consensus_color_is_winners_initial_color() {
        let cfg = RunConfig::builder(32).colors(vec![10, 12, 10]).build();
        let report = run_protocol(&cfg, 7);
        let c = report.outcome.winning_color().expect("consensus");
        let w = report.winner.expect("winner id");
        assert_eq!(report.initial_colors[w as usize], c);
    }

    #[test]
    fn different_seeds_can_give_different_winners() {
        let cfg = RunConfig::builder(32).colors(vec![16, 16]).build();
        let mut winners = std::collections::HashSet::new();
        for seed in 0..20 {
            winners.insert(run_protocol(&cfg, seed).winner);
        }
        assert!(winners.len() > 1, "winner should vary across seeds");
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let cfg = RunConfig::builder(24).colors(vec![8, 8, 8]).build();
        let a = run_protocol(&cfg, 123);
        let b = run_protocol(&cfg, 123);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
        assert_eq!(a.metrics.bits_sent, b.metrics.bits_sent);
    }

    #[test]
    fn faulty_agents_get_faulty_decisions() {
        let cfg = RunConfig::builder(32)
            .colors(vec![16, 16])
            .faults(0.25, Placement::LowIds)
            .gamma(4.0)
            .build();
        let report = run_protocol(&cfg, 9);
        let n_faulty = report
            .decisions
            .iter()
            .filter(|d| matches!(d, Decision::Faulty))
            .count();
        assert_eq!(n_faulty, 8);
        assert_eq!(report.n_active, 24);
        assert!(report.outcome.is_consensus());
    }

    #[test]
    fn color_assignment_respects_counts() {
        let cfg = RunConfig::builder(20).colors(vec![5, 7, 8]).build();
        let colors = cfg.assign_colors(11);
        let count = |c: ColorId| colors.iter().filter(|&&x| x == c).count();
        assert_eq!(count(0), 5);
        assert_eq!(count(1), 7);
        assert_eq!(count(2), 8);
    }

    #[test]
    #[should_panic(expected = "must sum to n")]
    fn bad_color_counts_panic() {
        let cfg = RunConfig::builder(10).colors(vec![3, 3]).build();
        let _ = cfg.assign_colors(0);
    }

    #[test]
    fn leader_election_assigns_ids() {
        let cfg = RunConfig::builder(10).leader_election().build();
        let colors = cfg.assign_colors(0);
        assert_eq!(colors, (0..10).collect::<Vec<ColorId>>());
    }

    #[test]
    fn active_fraction_counts_only_active() {
        let cfg = RunConfig::builder(16)
            .colors(vec![8, 8])
            .faults(0.5, Placement::LowIds)
            .gamma(4.0)
            .build();
        let report = run_protocol(&cfg, 3);
        let f0 = report.active_fraction(0);
        let f1 = report.active_fraction(1);
        assert!((f0 + f1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn audit_present_iff_requested() {
        let cfg = RunConfig::builder(16).record_ops(true).build();
        assert!(run_protocol(&cfg, 1).audit.is_some());
        let cfg = RunConfig::builder(16).record_ops(false).build();
        assert!(run_protocol(&cfg, 1).audit.is_none());
    }

    #[test]
    fn message_sizes_are_polylog() {
        // Theorem 4: messages of size O(log² n).
        let n = 256;
        let cfg = RunConfig::builder(n).build();
        let report = run_protocol(&cfg, 5);
        let log2n = 8u64;
        assert!(
            report.metrics.max_message_bits <= 40 * log2n * log2n,
            "max message {} bits exceeds O(log² n) ballpark",
            report.metrics.max_message_bits
        );
    }

    fn report_key(r: &RunReport) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}",
            r.outcome, r.winner, r.decisions, r.metrics, r.rounds, r.initial_colors,
            r.verify_failures
        )
    }

    #[test]
    fn staged_sequential_run_matches_monolithic_run() {
        // Sequential discipline + threads > 1 takes the staged engine,
        // which must replay the monolithic engine bit for bit — loss,
        // faults and all.
        let base = RunConfig::builder(24)
            .colors(vec![12, 12])
            .faults(0.25, Placement::Random { seed: 3 })
            .message_loss(0.2)
            .shard_floor(0); // keep real multi-shard execution at tiny n
        let want = report_key(&run_protocol(&base.clone().build(), 41));
        for threads in [2usize, 5, 0] {
            let cfg = base.clone().threads(threads).build();
            assert_eq!(
                report_key(&run_protocol(&cfg, 41)),
                want,
                "staged sequential (threads={threads}) diverged from monolithic"
            );
        }
    }

    #[test]
    fn sharded_loss_free_run_matches_sequential() {
        // With p = 0 neither discipline draws loss coins, so the sharded
        // engine's report equals the sequential one exactly.
        let base = RunConfig::builder(32).colors(vec![16, 16]).shard_floor(0);
        let want = report_key(&run_protocol(&base.clone().build(), 9));
        let cfg = base.clone().sharded(4).build();
        assert_eq!(report_key(&run_protocol(&cfg, 9)), want);
    }

    #[test]
    fn sharded_run_is_thread_invariant() {
        let base = RunConfig::builder(32)
            .colors(vec![16, 16])
            .message_loss(0.05)
            .record_ops(true)
            .shard_floor(0);
        let want = report_key(&run_protocol(&base.clone().sharded(1).build(), 17));
        for threads in [2usize, 8] {
            let got = report_key(&run_protocol(&base.clone().sharded(threads).build(), 17));
            assert_eq!(got, want, "sharded report must not depend on thread count");
        }
    }

    #[test]
    fn shard_floor_falls_back_digest_identically() {
        // Below the floor, `Sequential` + threads drops to the monolithic
        // engine and `PerAgent` clamps its shard count — both must be
        // invisible in the report. n = 24 is far under the default
        // 2048-agents-per-shard floor, so the default config exercises
        // the fallback and `shard_floor(0)` the real multi-shard paths.
        let base = RunConfig::builder(24)
            .colors(vec![12, 12])
            .message_loss(0.15)
            .record_ops(true);
        // Engine choice itself: floored sequential falls back, unfloored
        // shards; PerAgent always stages.
        assert!(!use_staged_engine(&base.clone().threads(4).build()));
        assert!(use_staged_engine(&base.clone().threads(4).shard_floor(0).build()));
        assert!(use_staged_engine(&base.clone().sharded(4).build()));
        let mono = report_key(&run_protocol(&base.clone().build(), 23));
        let floored = report_key(&run_protocol(&base.clone().threads(4).build(), 23));
        let unfloored =
            report_key(&run_protocol(&base.clone().threads(4).shard_floor(0).build(), 23));
        assert_eq!(floored, mono, "floored sequential fallback diverged");
        assert_eq!(unfloored, mono, "unfloored staged sequential diverged");
        let per_floored = report_key(&run_protocol(&base.clone().sharded(4).build(), 23));
        let per_unfloored =
            report_key(&run_protocol(&base.clone().sharded(4).shard_floor(0).build(), 23));
        assert_eq!(per_floored, per_unfloored, "PerAgent shard-count clamp diverged");
    }

    #[test]
    fn arena_reuses_sharded_runs_bit_for_bit() {
        let cfg =
            RunConfig::builder(24).colors(vec![12, 12]).sharded(3).shard_floor(0).build();
        let fresh = report_key(&run_protocol(&cfg, 5));
        let mut arena = TrialArena::new();
        // Interleave other shapes to try to poison the scratch.
        let other = RunConfig::builder(16).colors(vec![8, 8]).build();
        let _ = arena.run_protocol(&other, 1);
        assert_eq!(report_key(&arena.run_protocol(&cfg, 5)), fresh);
        let _ = arena.run_protocol(&other, 2);
        assert_eq!(report_key(&arena.run_protocol(&cfg, 5)), fresh);
    }

    #[test]
    fn uniform_colors_always_win() {
        let cfg = RunConfig::builder(16)
            .gamma(2.0)
            .build();
        let mut cfg = cfg;
        cfg.colors = ColorSpec::Uniform;
        let report = run_protocol(&cfg, 2);
        assert_eq!(report.outcome, Outcome::Consensus(0));
    }
}
