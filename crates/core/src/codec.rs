//! The real wire codec: `Msg`/`Batch` as measurable bytes.
//!
//! `gossip_net::size` prices messages in *idealized* information-
//! theoretic bits (fixed field widths, a free first-part batch tag) —
//! the accounting the paper's `O(log² n)` claims are stated in, and the
//! quantity every digest-pinned run meters. This module is the byte
//! format those estimates stand in for: a compact, self-delimiting
//! binary encoding that `rfc-node` puts on real sockets and that the
//! size-honesty tests compare the estimates against.
//!
//! # Message encoding
//!
//! Every message starts with a one-byte variant tag; multi-byte fields
//! are LEB128 varints (the same discipline `rfc_core::checkpoint`
//! uses — small values, the common case, cost one byte):
//!
//! | variant | tag | body |
//! |---|---|---|
//! | `QIntent`  | `0` | — |
//! | `Intents`  | `1` | `len, len × (value, target)` |
//! | `Vote`     | `2` | `value, round` |
//! | `QMinCert` | `3` | — |
//! | `Cert`     | `4` | `k, color, owner, len, len × (voter, round, value)` |
//!
//! # Frames
//!
//! A frame wraps one [`Batch`] for transport:
//!
//! ```text
//! frame := "RW" (2 bytes) | version (1 byte) | kind (1 byte)
//!          | varint body_len | body
//! kind 0 (MSG):   body is one bare message — the batch is the
//!                 singleton `{instance 0, msg}`, its instance tag
//!                 elided exactly as the idealized accounting elides
//!                 the first part's tag (the frame header, not the
//!                 payload, carries the singleton-ness).
//! kind 1 (BATCH): body is `varint count, count × (varint instance,
//!                 msg)`.
//! ```
//!
//! So the overwhelmingly common single-instance payload costs the
//! 4-byte header + `body_len` + the bare message, with no per-part tag
//! — mirroring `msg.rs`'s first-part tag elision byte for byte.
//!
//! # Honesty contract vs the idealized accounting
//!
//! For every honestly-valued message (fields inside the width ranges a
//! [`SizeEnv`] declares), the real encoding satisfies the **documented
//! slack bound**
//!
//! ```text
//! 8·encoded_len(msg) ≤ 8·(1 + Σ_fields ceil(width_f / 7) + len_fields)
//! ```
//!
//! — one byte of tag (vs `TAG_BITS = 3` idealized), `ceil(w/7)` bytes
//! per varint field of idealized width `w` (LEB128's 7-bit payload per
//! byte), and one varint per collection length (a field the idealized
//! accounting gives away for free, bounded by `varint_len(len)` bytes).
//! [`max_encoded_bits`] computes the bound; the per-variant tests (here
//! and in `tests/codec_roundtrip.rs`) assert it, alongside the
//! representability checks (`SizeEnv::covers_*`) that caught the
//! under-priced `for_n` round width.
//!
//! Decoding arbitrary bytes never panics: truncation, bad magic, wrong
//! version, and lexically invalid fields come back as a typed
//! [`CodecError`]; collection lengths are capped by the bytes actually
//! remaining, so a corrupt count cannot OOM the decoder (the
//! `checkpoint` module's taxonomy).

use crate::certificate::{CertData, VoteRec};
use crate::msg::{Batch, IntentEntry, IntentList, Msg};
use crate::sharing::Shared;
use gossip_net::ids::{AgentId, ColorId};
use gossip_net::size::SizeEnv;
use std::fmt;

/// Frame magic: "RW" (Rfc Wire).
pub const FRAME_MAGIC: [u8; 2] = *b"RW";
/// Wire format version this build encodes and accepts.
pub const FRAME_VERSION: u8 = 1;

/// Frame kind: one bare message (singleton instance-0 batch, tag elided).
const KIND_MSG: u8 = 0;
/// Frame kind: an explicit multi-part (or non-instance-0) batch.
const KIND_BATCH: u8 = 1;

const TAG_QINTENT: u8 = 0;
const TAG_INTENTS: u8 = 1;
const TAG_VOTE: u8 = 2;
const TAG_QMINCERT: u8 = 3;
const TAG_CERT: u8 = 4;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the structure it promised.
    Truncated,
    /// The frame does not start with [`FRAME_MAGIC`].
    BadMagic,
    /// The frame's version byte is not [`FRAME_VERSION`].
    WrongVersion {
        /// The version byte found on the wire.
        found: u8,
    },
    /// Structurally well-delimited but lexically invalid content.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "wire bytes truncated"),
            CodecError::BadMagic => write!(f, "frame magic mismatch (not an rfc wire frame)"),
            CodecError::WrongVersion { found } => {
                write!(f, "wire format version {found} (this build speaks {FRAME_VERSION})")
            }
            CodecError::Corrupt(what) => write!(f, "corrupt wire bytes: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------

/// Append `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Read a LEB128 varint at `*pos`, advancing it. Overflow-checked.
pub fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(CodecError::Corrupt("varint overflows u64"));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("varint too long"));
        }
    }
}

/// Encoded length of `v` as a varint, in bytes.
pub fn varint_len(v: u64) -> usize {
    (((64 - v.max(1).leading_zeros()) as usize) + 6) / 7
}

fn get_u32(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, CodecError> {
    u32::try_from(get_varint(bytes, pos)?).map_err(|_| CodecError::Corrupt(what))
}

fn get_u16(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u16, CodecError> {
    u16::try_from(get_varint(bytes, pos)?).map_err(|_| CodecError::Corrupt(what))
}

/// A collection length about to size an allocation: capped by the bytes
/// remaining (each element costs ≥ 1 byte), so corrupt counts cannot
/// OOM the decoder.
fn get_len_capped(bytes: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let v = get_varint(bytes, pos)?;
    let remaining = bytes.len().saturating_sub(*pos) as u64;
    if v > remaining {
        return Err(CodecError::Truncated);
    }
    Ok(v as usize)
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// Append the wire encoding of one message.
pub fn encode_msg(msg: &Msg, out: &mut Vec<u8>) {
    match msg {
        Msg::QIntent => out.push(TAG_QINTENT),
        Msg::QMinCert => out.push(TAG_QMINCERT),
        Msg::Vote { value, round } => {
            out.push(TAG_VOTE);
            put_varint(out, *value);
            put_varint(out, *round as u64);
        }
        Msg::Intents(list) => {
            out.push(TAG_INTENTS);
            put_varint(out, list.len() as u64);
            for e in list.iter() {
                put_varint(out, e.value);
                put_varint(out, e.target as u64);
            }
        }
        Msg::Cert(data) => {
            out.push(TAG_CERT);
            put_varint(out, data.k);
            put_varint(out, data.color as u64);
            put_varint(out, data.owner as u64);
            put_varint(out, data.votes.len() as u64);
            for v in data.votes.iter() {
                put_varint(out, v.voter as u64);
                put_varint(out, v.round as u64);
                put_varint(out, v.value);
            }
        }
    }
}

/// Decode one message from the front of `bytes`; returns the message
/// and the bytes consumed. Trailing bytes are the caller's business
/// (frames delimit; streams decode back to back).
pub fn decode_msg(bytes: &[u8]) -> Result<(Msg, usize), CodecError> {
    let mut pos = 0usize;
    let msg = decode_msg_at(bytes, &mut pos)?;
    Ok((msg, pos))
}

fn decode_msg_at(bytes: &[u8], pos: &mut usize) -> Result<Msg, CodecError> {
    let tag = *bytes.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    match tag {
        TAG_QINTENT => Ok(Msg::QIntent),
        TAG_QMINCERT => Ok(Msg::QMinCert),
        TAG_VOTE => {
            let value = get_varint(bytes, pos)?;
            let round = get_u16(bytes, pos, "vote round exceeds u16")?;
            Ok(Msg::Vote { value, round })
        }
        TAG_INTENTS => {
            let len = get_len_capped(bytes, pos)?;
            let mut entries = Vec::with_capacity(len);
            for _ in 0..len {
                let value = get_varint(bytes, pos)?;
                let target: AgentId = get_u32(bytes, pos, "intent target exceeds u32")?;
                entries.push(IntentEntry { value, target });
            }
            Ok(Msg::Intents(IntentList::from(entries)))
        }
        TAG_CERT => {
            let k = get_varint(bytes, pos)?;
            let color: ColorId = get_u32(bytes, pos, "cert color exceeds u32")?;
            let owner: AgentId = get_u32(bytes, pos, "cert owner exceeds u32")?;
            let len = get_len_capped(bytes, pos)?;
            let mut votes = Vec::with_capacity(len);
            for _ in 0..len {
                let voter: AgentId = get_u32(bytes, pos, "vote voter exceeds u32")?;
                let round = get_u16(bytes, pos, "vote-record round exceeds u16")?;
                let value = get_varint(bytes, pos)?;
                votes.push(VoteRec { voter, round, value });
            }
            // The wire bytes are authoritative: no re-sort, no k
            // re-derivation — a deviator's ill-formed certificate must
            // arrive as sent so Verification can fail it.
            Ok(Msg::Cert(Shared::new(CertData {
                k,
                votes: votes.into(),
                color,
                owner,
            })))
        }
        _ => Err(CodecError::Corrupt("unknown message tag")),
    }
}

/// Exact encoded length of one message, without encoding it.
pub fn encoded_msg_len(msg: &Msg) -> usize {
    match msg {
        Msg::QIntent | Msg::QMinCert => 1,
        Msg::Vote { value, round } => 1 + varint_len(*value) + varint_len(*round as u64),
        Msg::Intents(list) => {
            1 + varint_len(list.len() as u64)
                + list
                    .iter()
                    .map(|e| varint_len(e.value) + varint_len(e.target as u64))
                    .sum::<usize>()
        }
        Msg::Cert(data) => {
            1 + varint_len(data.k)
                + varint_len(data.color as u64)
                + varint_len(data.owner as u64)
                + varint_len(data.votes.len() as u64)
                + data
                    .votes
                    .iter()
                    .map(|v| {
                        varint_len(v.voter as u64)
                            + varint_len(v.round as u64)
                            + varint_len(v.value)
                    })
                    .sum::<usize>()
        }
    }
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Append one framed batch: header, length, body. A singleton
/// instance-0 batch takes the `MSG` kind — its body is bit-for-bit the
/// bare message (the first-part tag elision, realized).
pub fn encode_frame(batch: &Batch<Msg>, out: &mut Vec<u8>) {
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    let mut body = Vec::new();
    if batch.len() == 1 && batch.parts()[0].instance == 0 {
        out.push(KIND_MSG);
        encode_msg(&batch.parts()[0].payload, &mut body);
    } else {
        out.push(KIND_BATCH);
        put_varint(&mut body, batch.len() as u64);
        for part in batch.parts() {
            put_varint(&mut body, part.instance as u64);
            encode_msg(&part.payload, &mut body);
        }
    }
    put_varint(out, body.len() as u64);
    out.extend_from_slice(&body);
}

/// Convenience: frame one bare message (a singleton instance-0 batch).
pub fn encode_msg_frame(msg: &Msg, out: &mut Vec<u8>) {
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.push(KIND_MSG);
    put_varint(out, encoded_msg_len(msg) as u64);
    encode_msg(msg, out);
}

/// Decode one frame from the front of `bytes`; returns the batch and
/// the total bytes consumed (header + body). Bytes after the frame are
/// the next frame's business.
pub fn decode_frame(bytes: &[u8]) -> Result<(Batch<Msg>, usize), CodecError> {
    let magic = bytes.get(..2).ok_or(CodecError::Truncated)?;
    if magic != FRAME_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let mut pos = 2usize;
    let version = *bytes.get(pos).ok_or(CodecError::Truncated)?;
    pos += 1;
    if version != FRAME_VERSION {
        return Err(CodecError::WrongVersion { found: version });
    }
    let kind = *bytes.get(pos).ok_or(CodecError::Truncated)?;
    pos += 1;
    let body_len = get_varint(bytes, &mut pos)?;
    let body_end = (body_len as usize)
        .checked_add(pos)
        .filter(|&e| body_len <= bytes.len() as u64 && e <= bytes.len())
        .ok_or(CodecError::Truncated)?;
    let body = &bytes[pos..body_end];
    let batch = match kind {
        KIND_MSG => {
            let (msg, used) = decode_msg(body)?;
            if used != body.len() {
                return Err(CodecError::Corrupt("trailing bytes after bare message body"));
            }
            Batch::single(0, msg)
        }
        KIND_BATCH => {
            let mut bpos = 0usize;
            let count = get_len_capped(body, &mut bpos)?;
            let mut batch = Batch::new();
            for _ in 0..count {
                let instance = get_u32(body, &mut bpos, "batch instance exceeds u32")?;
                let msg = decode_msg_at(body, &mut bpos)?;
                batch.push(instance, msg);
            }
            if bpos != body.len() {
                return Err(CodecError::Corrupt("trailing bytes after batch body"));
            }
            batch
        }
        _ => return Err(CodecError::Corrupt("unknown frame kind")),
    };
    Ok((batch, body_end))
}

// ---------------------------------------------------------------------
// The documented slack bound
// ---------------------------------------------------------------------

/// Upper bound, in bits, that the real encoding of an honestly-valued
/// message is allowed to cost under the documented slack contract:
/// one tag byte, `ceil(w/7)` bytes per varint field of idealized width
/// `w`, plus the collection-length varints the idealized accounting
/// does not charge. The honesty tests assert
/// `8·encoded_msg_len(msg) ≤ max_encoded_bits(msg, env)` for every
/// variant.
pub fn max_encoded_bits(msg: &Msg, env: &SizeEnv) -> u64 {
    let vb = |w: u32| (w as u64).div_ceil(7); // varint bytes for a w-bit field
    let bytes = match msg {
        Msg::QIntent | Msg::QMinCert => 1,
        Msg::Vote { .. } => 1 + vb(env.value_bits) + vb(env.round_bits),
        Msg::Intents(list) => {
            1 + varint_len(list.len() as u64) as u64
                + list.len() as u64 * (vb(env.value_bits) + vb(env.id_bits))
        }
        Msg::Cert(data) => {
            1 + vb(env.value_bits)
                + vb(env.color_bits)
                + vb(env.id_bits)
                + varint_len(data.votes.len() as u64) as u64
                + data.votes.len() as u64
                    * (vb(env.id_bits) + vb(env.round_bits) + vb(env.value_bits))
        }
    };
    8 * bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::size::MsgSize;

    fn sample_cert(n_votes: usize) -> Msg {
        let votes: Vec<VoteRec> = (0..n_votes)
            .map(|i| VoteRec {
                voter: (i * 3 % 97) as AgentId,
                round: (i % 24) as u16,
                value: (i as u64) * 977 % (1 << 30),
            })
            .collect();
        Msg::cert(CertData::build(7, 3, votes, 1 << 30))
    }

    fn sample_intents(len: usize) -> Msg {
        Msg::Intents(
            (0..len)
                .map(|i| IntentEntry {
                    value: (i as u64) * 131 % (1 << 30),
                    target: (i % 89) as AgentId,
                })
                .collect(),
        )
    }

    fn variants() -> Vec<Msg> {
        vec![
            Msg::QIntent,
            Msg::QMinCert,
            Msg::Vote { value: 0, round: 0 },
            Msg::Vote { value: u64::MAX, round: u16::MAX },
            sample_intents(0),
            sample_intents(24),
            sample_cert(0),
            sample_cert(30),
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in variants() {
            let mut buf = Vec::new();
            encode_msg(&msg, &mut buf);
            assert_eq!(buf.len(), encoded_msg_len(&msg), "{msg:?}");
            let (back, used) = decode_msg(&buf).expect("round trip");
            assert_eq!(used, buf.len());
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn decode_reports_consumed_length_with_trailing_bytes() {
        let mut buf = Vec::new();
        encode_msg(&Msg::Vote { value: 300, round: 2 }, &mut buf);
        let clean = buf.len();
        buf.extend_from_slice(&[0xde, 0xad]);
        let (msg, used) = decode_msg(&buf).unwrap();
        assert_eq!(used, clean);
        assert_eq!(msg, Msg::Vote { value: 300, round: 2 });
    }

    #[test]
    fn singleton_instance0_frame_elides_the_batch_layer() {
        // The realized first-part tag elision: a singleton instance-0
        // batch's frame body is bit-for-bit the bare message.
        let msg = sample_cert(12);
        let mut bare = Vec::new();
        encode_msg(&msg, &mut bare);
        let mut framed = Vec::new();
        encode_frame(&Batch::single(0, msg.clone()), &mut framed);
        assert_eq!(&framed[framed.len() - bare.len()..], &bare[..]);
        let mut msg_framed = Vec::new();
        encode_msg_frame(&msg, &mut msg_framed);
        assert_eq!(framed, msg_framed);
        let (batch, used) = decode_frame(&framed).unwrap();
        assert_eq!(used, framed.len());
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.parts()[0].instance, 0);
        assert_eq!(batch.parts()[0].payload, msg);
    }

    #[test]
    fn multi_part_batches_round_trip_with_instances() {
        let mut b = Batch::new();
        b.push(5, Msg::QIntent);
        b.push(0, Msg::Vote { value: 9, round: 1 });
        b.push(4096, sample_intents(3));
        let mut buf = Vec::new();
        encode_frame(&b, &mut buf);
        let (back, used) = decode_frame(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, b);
        // A singleton on a non-zero instance cannot elide its tag.
        let single5 = Batch::single(5, Msg::QIntent);
        let mut buf5 = Vec::new();
        encode_frame(&single5, &mut buf5);
        let (back5, _) = decode_frame(&buf5).unwrap();
        assert_eq!(back5, single5);
        // Empty batches are legal on the wire.
        let empty: Batch<Msg> = Batch::new();
        let mut bufe = Vec::new();
        encode_frame(&empty, &mut bufe);
        assert!(decode_frame(&bufe).unwrap().0.is_empty());
    }

    #[test]
    fn frame_error_taxonomy() {
        let mut good = Vec::new();
        encode_msg_frame(&Msg::QIntent, &mut good);
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(decode_frame(&bad).unwrap_err(), CodecError::BadMagic);
        // Wrong version.
        let mut bad = good.clone();
        bad[2] = 9;
        assert_eq!(
            decode_frame(&bad).unwrap_err(),
            CodecError::WrongVersion { found: 9 }
        );
        // Unknown kind.
        let mut bad = good.clone();
        bad[3] = 7;
        assert!(matches!(decode_frame(&bad).unwrap_err(), CodecError::Corrupt(_)));
        // Every truncated prefix errors without panicking.
        for cut in 0..good.len() {
            assert!(decode_frame(&good[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn lexical_range_errors_are_corrupt_not_panics() {
        // vote round > u16::MAX
        let mut buf = vec![TAG_VOTE];
        put_varint(&mut buf, 1);
        put_varint(&mut buf, u16::MAX as u64 + 1);
        assert!(matches!(decode_msg(&buf).unwrap_err(), CodecError::Corrupt(_)));
        // intent target > u32::MAX
        let mut buf = vec![TAG_INTENTS];
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 5);
        put_varint(&mut buf, u32::MAX as u64 + 1);
        assert!(matches!(decode_msg(&buf).unwrap_err(), CodecError::Corrupt(_)));
        // absurd length claims are Truncated (capped), never an OOM
        let mut buf = vec![TAG_INTENTS];
        put_varint(&mut buf, u64::MAX / 2);
        assert_eq!(decode_msg(&buf).unwrap_err(), CodecError::Truncated);
        // unknown tag
        assert!(matches!(decode_msg(&[99]).unwrap_err(), CodecError::Corrupt(_)));
        // empty input
        assert_eq!(decode_msg(&[]).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0u64, 1, 127, 128, 300, 1 << 14, (1 << 21) - 1, 1 << 21, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v = {v}");
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn real_bytes_respect_the_documented_slack_per_variant() {
        // The honesty bound the idealized accounting is now held to:
        // for honestly-valued messages, real bits ≤ max_encoded_bits.
        let env = SizeEnv::with_params(4096, (4096u64).pow(3), 36, 2);
        let q = 36usize;
        let honest: Vec<Msg> = vec![
            Msg::QIntent,
            Msg::QMinCert,
            Msg::Vote { value: (4096u64).pow(3) - 1, round: (q - 1) as u16 },
            Msg::Intents(
                (0..q)
                    .map(|i| IntentEntry {
                        value: (4096u64).pow(3) - 1 - i as u64,
                        target: 4095,
                    })
                    .collect(),
            ),
            Msg::cert(CertData::build(
                4095,
                1,
                (0..q)
                    .map(|i| VoteRec {
                        voter: 4095,
                        round: i as u16,
                        value: (4096u64).pow(3) - 1,
                    })
                    .collect(),
                (4096u64).pow(3),
            )),
        ];
        for msg in honest {
            let real_bits = 8 * encoded_msg_len(&msg) as u64;
            let bound = max_encoded_bits(&msg, &env);
            assert!(
                real_bits <= bound,
                "{msg:?}: real {real_bits} bits > slack bound {bound}"
            );
            // And the idealized price stays a genuine lower-order
            // estimate: the bound is within 8/7 + per-field rounding of
            // the ideal, never an order of magnitude apart.
            let ideal = msg.size_bits(&env);
            assert!(bound <= 2 * ideal + 64, "{msg:?}: bound {bound} vs ideal {ideal}");
        }
    }

    #[test]
    fn tag_byte_addresses_every_variant() {
        // TAG_BITS = 3 claims ≤ 8 variants; the codec's tag byte
        // enumerates exactly the five that exist.
        let tags = [TAG_QINTENT, TAG_INTENTS, TAG_VOTE, TAG_QMINCERT, TAG_CERT];
        assert!(tags.len() <= SizeEnv::MAX_TAGGED_VARIANTS);
        assert!(tags.iter().all(|&t| (t as usize) < SizeEnv::MAX_TAGGED_VARIANTS));
    }
}
