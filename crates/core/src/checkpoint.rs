//! # Checkpoint / resume for deterministic runs
//!
//! A run is a pure function of `(RunConfig, seed)`, executed in
//! synchronous rounds. That makes snapshot-at-round-boundary +
//! deterministic replay the complete checkpoint story: capture the
//! **mutable** state between two rounds, rebuild every immutable
//! ingredient from `(cfg, seed)` on restore, and continue. The contract
//! — pinned by `tests/checkpoint_resume.rs` — is absolute:
//! checkpoint-at-round-`r` + restore + run-to-completion is
//! **bit-identical** (report digest and op log, event for event) to the
//! straight-through run, under both [`RngDiscipline`] variants and any
//! thread count.
//!
//! ## What a checkpoint carries
//!
//! * a self-describing header: magic `RFCK`, format version, the run
//!   `seed`, a fingerprint of the (thread-normalized) [`RunConfig`],
//!   `n`, and the round;
//! * the engine's mutable layer ([`gossip_net::network::EngineState`]):
//!   round, scenario cursor, live fault flags, installed partition cut,
//!   and the sequential loss stream's raw xoshiro256++ words;
//! * [`Metrics`] counters and the op log — a restored run **continues
//!   exact counts** (the metering contract extends across the seam);
//! * per-agent protocol state: color, RNG words, the intention list,
//!   the commitment ledger, received votes, certificates, and the
//!   verification verdict.
//!
//! What it does *not* carry: topology, size env, fault plan, scenario
//! script, loss schedule, params — all derived from `(cfg, seed)` by the
//! restorer, which is also what lets the header detect a config/seed
//! mismatch instead of deserializing garbage.
//!
//! ## Sharing-preserving encoding
//!
//! Intention lists and certificates are reference-counted and heavily
//! shared (one agent's declaration lands in many ledgers; one winning
//! certificate is held by everyone after Find-Min). The encoder interns
//! both by allocation identity into two pools and stores pool indices,
//! so restore rebuilds the same sharing graph — compact on disk *and*
//! cheap in memory. The memo fields inside [`crate::msg::IntentListData`]
//! are pure caches of the entries and are recomputed, never serialized.
//!
//! ## Scope
//!
//! Only fully **honest** networks are checkpointable mid-run: deviating
//! [`AgentSlot`] variants carry strategy-private state this module
//! cannot see, so [`checkpoint_network`] returns
//! [`CheckpointError::UnsupportedAgent`] for them (equilibrium
//! experiments checkpoint at *trial* granularity instead — see
//! `experiments::parallel::run_trials_fold_resumable` and the adversary
//! harness). Async (sequential-GOSSIP) runs are likewise out of scope:
//! the checkpoint driver is the synchronous phase clock.

use std::collections::HashMap;
use std::fmt;

use gossip_net::ids::{AgentId, ColorId};
use gossip_net::metrics::{Metrics, Tally};
use gossip_net::network::{EngineState, Network};
use gossip_net::oplog::{OpKind, OpLog};

use crate::agent_plane::AgentSlot;
use crate::certificate::{CertData, Certificate, VoteRec};
use crate::engine::{ConsensusAgent, ProtocolCore, Role, VerifyFailure};
use crate::ledger::{ConsistencyError, Declaration};
use crate::msg::{IntentEntry, IntentList, Msg};
use crate::runner::{
    build_network_slots, collect_report, honest_slot_factory, network_ingredients, RunConfig,
    RunReport,
};
use crate::sharing::Shared;

/// File magic: the first four bytes of every checkpoint.
pub const MAGIC: [u8; 4] = *b"RFCK";

/// Current checkpoint format version. Bump on any layout change; old
/// versions are rejected with [`CheckpointError::WrongVersion`], never
/// best-effort parsed.
pub const FORMAT_VERSION: u16 = 1;

/// Why a checkpoint could not be written or read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the structure did.
    Truncated,
    /// The first four bytes are not `RFCK`.
    BadMagic,
    /// A version this build does not speak.
    WrongVersion {
        /// The version tag found in the file.
        found: u16,
    },
    /// The checkpoint was taken at a different population size than the
    /// [`RunConfig`] it is being restored under.
    NMismatch {
        /// `cfg.n` of the restoring config.
        expected: usize,
        /// `n` recorded in the checkpoint.
        found: usize,
    },
    /// The restoring [`RunConfig`] is not the one the checkpoint was
    /// taken under (thread count excluded — resuming on a different
    /// thread count is legal and bit-identical).
    ConfigMismatch {
        /// Fingerprint of the restoring config.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        found: u64,
    },
    /// The network holds a non-honest agent, whose strategy-private
    /// state this module cannot capture.
    UnsupportedAgent {
        /// The offending agent.
        id: AgentId,
        /// Its role label (strategy name, or `"custom"`).
        role: &'static str,
    },
    /// Structurally invalid content behind a valid header.
    Corrupt(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::WrongVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (this build speaks {FORMAT_VERSION})")
            }
            CheckpointError::NMismatch { expected, found } => {
                write!(f, "checkpoint is for n = {found}, config has n = {expected}")
            }
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint config fingerprint {found:#018x} does not match the restoring config ({expected:#018x})"
            ),
            CheckpointError::UnsupportedAgent { id, role } => write!(
                f,
                "agent {id} is not checkpointable mid-run (role: {role}); only fully honest networks are"
            ),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The self-describing header of a checkpoint, readable without
/// touching the body (CLI display, pre-restore validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version (always [`FORMAT_VERSION`] after a successful read).
    pub version: u16,
    /// The run seed.
    pub seed: u64,
    /// [`config_fingerprint`] of the originating config.
    pub config_fingerprint: u64,
    /// Population size.
    pub n: usize,
    /// The round boundary the snapshot was taken at.
    pub round: usize,
}

/// FNV-1a 64-bit (the corpus digest primitive, reused for the config
/// fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Fingerprint of everything in a [`RunConfig`] that determines run
/// *behavior*. `threads`, `shard_floor`, `time_stages`, and
/// `autotune_shards` are normalized out: staged output is bit-identical
/// for every thread count / floor (and the tuner only ever moves the
/// thread count), and stage timing is observability-only, so a
/// checkpoint taken under one setting legally resumes under another.
/// `rng_discipline` stays in — the disciplines are distinct behaviors
/// with distinct digests.
pub fn config_fingerprint(cfg: &RunConfig) -> u64 {
    let mut norm = cfg.clone();
    norm.threads = 1;
    norm.shard_floor = None;
    norm.time_stages = false;
    norm.autotune_shards = false;
    fnv1a(format!("{norm:?}").as_bytes())
}

// ---------------------------------------------------------------------
// Byte-level encoder / decoder: LEB128 varints for counters and ids,
// raw little-endian words for RNG state (full-entropy, varints would
// only inflate it).
// ---------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64_raw(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                break;
            }
            self.buf.push(b | 0x80);
        }
    }
    fn usize(&mut self, v: usize) {
        self.varint(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn bools(&mut self, flags: &[bool]) {
        // Bit-packed, LSB-first within each byte.
        for chunk in flags.chunks(8) {
            let mut b = 0u8;
            for (i, &f) in chunk.iter().enumerate() {
                b |= (f as u8) << i;
            }
            self.buf.push(b);
        }
    }
}

struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Dec { b, pos: 0 }
    }
    fn take(&mut self, len: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(len).ok_or(CheckpointError::Truncated)?;
        if end > self.b.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CheckpointError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }
    fn u64_raw(&mut self) -> Result<u64, CheckpointError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }
    fn varint(&mut self) -> Result<u64, CheckpointError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(CheckpointError::Corrupt("varint overflows u64"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CheckpointError::Corrupt("varint too long"));
            }
        }
    }
    fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.varint()?).map_err(|_| CheckpointError::Corrupt("count overflows usize"))
    }
    /// A length that will be used to allocate: bounded by the bytes
    /// actually remaining, so a corrupt count cannot OOM the decoder.
    fn len_capped(&mut self) -> Result<usize, CheckpointError> {
        let v = self.usize()?;
        if v > self.b.len().saturating_sub(self.pos) {
            return Err(CheckpointError::Truncated);
        }
        Ok(v)
    }
    fn str(&mut self) -> Result<String, CheckpointError> {
        let len = self.len_capped()?;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec()).map_err(|_| CheckpointError::Corrupt("non-UTF-8 string"))
    }
    fn bools(&mut self, n: usize) -> Result<Vec<bool>, CheckpointError> {
        let bytes = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
    }
    fn done(&self) -> Result<(), CheckpointError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt("trailing bytes after checkpoint body"))
        }
    }
}

// ---------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------

fn encode_header(e: &mut Enc, h: &Header) {
    e.buf.extend_from_slice(&MAGIC);
    e.u16(h.version);
    e.u64_raw(h.seed);
    e.u64_raw(h.config_fingerprint);
    e.usize(h.n);
    e.usize(h.round);
}

fn decode_header(d: &mut Dec) -> Result<Header, CheckpointError> {
    if d.take(4)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = d.u16()?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::WrongVersion { found: version });
    }
    Ok(Header {
        version,
        seed: d.u64_raw()?,
        config_fingerprint: d.u64_raw()?,
        n: d.usize()?,
        round: d.usize()?,
    })
}

/// Read just the header of a checkpoint (cheap validation / display).
pub fn peek_header(bytes: &[u8]) -> Result<Header, CheckpointError> {
    decode_header(&mut Dec::new(bytes))
}

// ---------------------------------------------------------------------
// Interning pools
// ---------------------------------------------------------------------

#[derive(Default)]
struct Pools {
    intent_idx: HashMap<usize, u32>,
    intents: Vec<IntentList>,
    cert_idx: HashMap<usize, u32>,
    certs: Vec<Certificate>,
}

impl Pools {
    fn intern_intents(&mut self, list: &IntentList) -> u32 {
        let key = IntentList::as_ptr(list) as usize;
        *self.intent_idx.entry(key).or_insert_with(|| {
            self.intents.push(list.clone());
            (self.intents.len() - 1) as u32
        })
    }
    fn intern_cert(&mut self, cert: &Certificate) -> u32 {
        let key = Shared::as_ptr(cert) as usize;
        *self.cert_idx.entry(key).or_insert_with(|| {
            self.certs.push(Certificate::clone(cert));
            (self.certs.len() - 1) as u32
        })
    }
}

/// Collect every shared payload in deterministic first-encounter order
/// (agents by id; within an agent: own intents, ledger order, own cert,
/// min cert) so the same state always encodes to the same bytes.
fn build_pools(cores: &[&ProtocolCore]) -> Pools {
    let mut pools = Pools::default();
    for core in cores {
        pools.intern_intents(&core.intents);
        for entry in core.ledger.entries() {
            if let Declaration::Intents(list) = &entry.decl {
                pools.intern_intents(list);
            }
        }
        if let Some(c) = &core.own_cert {
            pools.intern_cert(c);
        }
        if let Some(c) = &core.min_cert {
            pools.intern_cert(c);
        }
    }
    pools
}

fn encode_vote(e: &mut Enc, v: &VoteRec) {
    e.varint(v.voter as u64);
    e.varint(v.round as u64);
    e.varint(v.value);
}

fn decode_vote(d: &mut Dec) -> Result<VoteRec, CheckpointError> {
    Ok(VoteRec {
        voter: decode_agent_id(d)?,
        round: u16::try_from(d.varint()?).map_err(|_| CheckpointError::Corrupt("vote round overflows u16"))?,
        value: d.varint()?,
    })
}

fn decode_agent_id(d: &mut Dec) -> Result<AgentId, CheckpointError> {
    u32::try_from(d.varint()?).map_err(|_| CheckpointError::Corrupt("agent id overflows u32"))
}

fn encode_pools(e: &mut Enc, pools: &Pools) {
    e.usize(pools.intents.len());
    for list in &pools.intents {
        e.usize(list.len());
        for entry in list.iter() {
            e.varint(entry.value);
            e.varint(entry.target as u64);
        }
    }
    e.usize(pools.certs.len());
    for cert in &pools.certs {
        e.varint(cert.k);
        e.varint(cert.color as u64);
        e.varint(cert.owner as u64);
        e.usize(cert.votes.len());
        for v in cert.votes.iter() {
            encode_vote(e, &v);
        }
    }
}

fn decode_pools(d: &mut Dec) -> Result<(Vec<IntentList>, Vec<Certificate>), CheckpointError> {
    let n_lists = d.len_capped()?;
    let mut intents = Vec::with_capacity(n_lists);
    for _ in 0..n_lists {
        let len = d.len_capped()?;
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            entries.push(IntentEntry {
                value: d.varint()?,
                target: decode_agent_id(d)?,
            });
        }
        intents.push(IntentList::from(entries));
    }
    let n_certs = d.len_capped()?;
    let mut certs = Vec::with_capacity(n_certs);
    for _ in 0..n_certs {
        let k = d.varint()?;
        let color = u32::try_from(d.varint()?)
            .map_err(|_| CheckpointError::Corrupt("color overflows u32"))? as ColorId;
        let owner = decode_agent_id(d)?;
        let n_votes = d.len_capped()?;
        let mut votes = Vec::with_capacity(n_votes);
        for _ in 0..n_votes {
            votes.push(decode_vote(d)?);
        }
        certs.push(Shared::new(CertData { k, votes: votes.into(), color, owner }));
    }
    Ok((intents, certs))
}

// ---------------------------------------------------------------------
// Per-agent state
// ---------------------------------------------------------------------

/// `VerifyFailure` wire tags (`Option<VerifyFailure>` flattened).
const VF_NONE: u8 = 0;
const VF_BAD_SUM: u8 = 1;
const VF_STRUCTURAL: u8 = 2;
const VF_VOTE_MISMATCH: u8 = 3;
const VF_VOTE_FROM_FAULTY: u8 = 4;
const VF_SELF_VOTE: u8 = 5;
const VF_FAILED_EARLIER: u8 = 6;

fn encode_core(e: &mut Enc, core: &ProtocolCore, pools: &mut Pools) {
    e.varint(core.color as u64);
    for w in core.rng.state() {
        e.u64_raw(w);
    }
    e.varint(pools.intern_intents(&core.intents) as u64);
    e.usize(core.ledger.entries().len());
    for entry in core.ledger.entries() {
        e.varint(entry.agent as u64);
        e.varint(entry.round as u64);
        match &entry.decl {
            Declaration::Faulty => e.u8(0),
            Declaration::Intents(list) => {
                e.u8(1);
                e.varint(pools.intern_intents(list) as u64);
            }
        }
    }
    e.usize(core.votes.len());
    for v in core.votes.iter() {
        encode_vote(e, &v);
    }
    e.varint(core.votes_recv as u64);
    e.usize(core.vote_idx);
    for cert in [&core.own_cert, &core.min_cert] {
        match cert {
            None => e.u8(0),
            Some(c) => {
                e.u8(1);
                e.varint(pools.intern_cert(c) as u64);
            }
        }
    }
    e.u8(core.failed as u8);
    match core.verify_failure {
        None => e.u8(VF_NONE),
        Some(VerifyFailure::BadSum) => e.u8(VF_BAD_SUM),
        Some(VerifyFailure::Structural) => e.u8(VF_STRUCTURAL),
        Some(VerifyFailure::Inconsistent(ConsistencyError::VoteMismatch { voter })) => {
            e.u8(VF_VOTE_MISMATCH);
            e.varint(voter as u64);
        }
        Some(VerifyFailure::Inconsistent(ConsistencyError::VoteFromFaulty { voter })) => {
            e.u8(VF_VOTE_FROM_FAULTY);
            e.varint(voter as u64);
        }
        Some(VerifyFailure::SelfVoteMismatch) => e.u8(VF_SELF_VOTE),
        Some(VerifyFailure::FailedEarlier) => e.u8(VF_FAILED_EARLIER),
    }
    match core.decided {
        None => e.u8(0),
        Some(c) => {
            e.u8(1);
            e.varint(c as u64);
        }
    }
}

fn pool_ref<'p, T>(pool: &'p [T], idx: u64, what: &'static str) -> Result<&'p T, CheckpointError> {
    usize::try_from(idx)
        .ok()
        .and_then(|i| pool.get(i))
        .ok_or(CheckpointError::Corrupt(what))
}

fn decode_core(
    d: &mut Dec,
    id: AgentId,
    params: crate::Params,
    intents_pool: &[IntentList],
    cert_pool: &[Certificate],
) -> Result<ProtocolCore, CheckpointError> {
    let color = u32::try_from(d.varint()?)
        .map_err(|_| CheckpointError::Corrupt("color overflows u32"))? as ColorId;
    let mut rng_state = [0u64; 4];
    for w in &mut rng_state {
        *w = d.u64_raw()?;
    }
    if rng_state == [0; 4] {
        return Err(CheckpointError::Corrupt("all-zero RNG state"));
    }
    let rng = gossip_net::rng::DetRng::from_state(rng_state);
    let own_intents = pool_ref(intents_pool, d.varint()?, "intent pool index out of range")?.clone();
    let mut core = ProtocolCore::with_intents(
        id,
        params,
        params.sync_schedule(),
        color,
        rng,
        own_intents,
    );
    // Ledger: replay the recorded rows in order. Each agent appears at
    // most once in a live ledger, so `declare`/`mark_faulty` reproduce
    // the exact entry vector (same order, same rounds).
    let n_entries = d.len_capped()?;
    for _ in 0..n_entries {
        let agent = decode_agent_id(d)?;
        let round = u32::try_from(d.varint()?)
            .map_err(|_| CheckpointError::Corrupt("ledger round overflows u32"))?;
        match d.u8()? {
            0 => core.ledger.mark_faulty(agent, round),
            1 => {
                let list =
                    pool_ref(intents_pool, d.varint()?, "intent pool index out of range")?.clone();
                if !core.ledger.declare(agent, round, list) {
                    return Err(CheckpointError::Corrupt("duplicate ledger row for one agent"));
                }
            }
            _ => return Err(CheckpointError::Corrupt("bad ledger declaration tag")),
        }
    }
    let n_votes = d.len_capped()?;
    let mut votes = crate::certificate::VoteLanes::with_capacity(n_votes);
    for _ in 0..n_votes {
        votes.push(decode_vote(d)?);
    }
    core.votes = votes;
    core.votes_recv = u32::try_from(d.varint()?)
        .map_err(|_| CheckpointError::Corrupt("vote counter overflows u32"))?;
    core.vote_idx = d.usize()?;
    let mut certs = [None, None];
    for slot in &mut certs {
        *slot = match d.u8()? {
            0 => None,
            1 => Some(Certificate::clone(pool_ref(
                cert_pool,
                d.varint()?,
                "certificate pool index out of range",
            )?)),
            _ => return Err(CheckpointError::Corrupt("bad certificate tag")),
        };
    }
    let [own_cert, min_cert] = certs;
    core.own_cert = own_cert;
    core.min_cert = min_cert;
    core.failed = match d.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CheckpointError::Corrupt("bad failed flag")),
    };
    core.verify_failure = match d.u8()? {
        VF_NONE => None,
        VF_BAD_SUM => Some(VerifyFailure::BadSum),
        VF_STRUCTURAL => Some(VerifyFailure::Structural),
        VF_VOTE_MISMATCH => Some(VerifyFailure::Inconsistent(ConsistencyError::VoteMismatch {
            voter: decode_agent_id(d)?,
        })),
        VF_VOTE_FROM_FAULTY => Some(VerifyFailure::Inconsistent(
            ConsistencyError::VoteFromFaulty { voter: decode_agent_id(d)? },
        )),
        VF_SELF_VOTE => Some(VerifyFailure::SelfVoteMismatch),
        VF_FAILED_EARLIER => Some(VerifyFailure::FailedEarlier),
        _ => return Err(CheckpointError::Corrupt("bad verify-failure tag")),
    };
    core.decided = match d.u8()? {
        0 => None,
        1 => Some(
            u32::try_from(d.varint()?)
                .map_err(|_| CheckpointError::Corrupt("decision overflows u32"))? as ColorId,
        ),
        _ => return Err(CheckpointError::Corrupt("bad decision tag")),
    };
    Ok(core)
}

// ---------------------------------------------------------------------
// Engine + metrics + op log sections
// ---------------------------------------------------------------------

fn encode_engine(e: &mut Enc, state: &EngineState, n: usize) {
    e.usize(state.next_event);
    debug_assert_eq!(state.down.len(), n);
    e.bools(&state.down);
    match &state.partition_sides {
        None => e.u8(0),
        Some(sides) => {
            e.u8(1);
            debug_assert_eq!(sides.len(), n);
            e.buf.extend_from_slice(sides);
        }
    }
    match state.loss_rng {
        None => e.u8(0),
        Some(words) => {
            e.u8(1);
            for w in words {
                e.u64_raw(w);
            }
        }
    }
}

fn decode_engine(d: &mut Dec, n: usize, round: usize) -> Result<EngineState, CheckpointError> {
    let next_event = d.usize()?;
    let down = d.bools(n)?;
    let partition_sides = match d.u8()? {
        0 => None,
        1 => Some(d.take(n)?.to_vec()),
        _ => return Err(CheckpointError::Corrupt("bad partition tag")),
    };
    let loss_rng = match d.u8()? {
        0 => None,
        1 => {
            let mut words = [0u64; 4];
            for w in &mut words {
                *w = d.u64_raw()?;
            }
            if words == [0; 4] {
                return Err(CheckpointError::Corrupt("all-zero loss RNG state"));
            }
            Some(words)
        }
        _ => return Err(CheckpointError::Corrupt("bad loss RNG tag")),
    };
    Ok(EngineState {
        round,
        next_event,
        down,
        partition_sides,
        loss_rng,
    })
}

fn encode_metrics(e: &mut Enc, m: &Metrics) {
    e.varint(m.messages_sent);
    e.varint(m.undelivered);
    e.varint(m.bits_sent);
    e.varint(m.max_message_bits);
    e.varint(m.rounds);
    e.varint(m.ticks);
    e.varint(m.max_active_links);
    e.usize(m.phases.len());
    for (name, t) in &m.phases {
        e.str(name);
        e.varint(t.messages);
        e.varint(t.bits);
        e.varint(t.max_message_bits);
    }
    match m.current_phase_name() {
        None => e.u8(0),
        Some(name) => {
            e.u8(1);
            e.str(name);
        }
    }
}

fn decode_metrics(d: &mut Dec) -> Result<Metrics, CheckpointError> {
    // `Metrics` cannot be built by struct literal outside its module
    // (the current-phase pointer is private); every counter field is
    // public, so restore by assignment, then re-enter the recorded
    // current phase — `enter_phase` on an existing name is exactly
    // "set the pointer, keep the tally".
    let mut m = Metrics::new();
    m.messages_sent = d.varint()?;
    m.undelivered = d.varint()?;
    m.bits_sent = d.varint()?;
    m.max_message_bits = d.varint()?;
    m.rounds = d.varint()?;
    m.ticks = d.varint()?;
    m.max_active_links = d.varint()?;
    let n_phases = d.len_capped()?;
    let mut phases = Vec::with_capacity(n_phases);
    for _ in 0..n_phases {
        let name = d.str()?;
        let t = Tally {
            messages: d.varint()?,
            bits: d.varint()?,
            max_message_bits: d.varint()?,
        };
        phases.push((name, t));
    }
    m.phases = phases;
    match d.u8()? {
        0 => {}
        1 => {
            let name = d.str()?;
            if !m.phases.iter().any(|(n, _)| *n == name) {
                return Err(CheckpointError::Corrupt("current phase not in phase table"));
            }
            // Re-entering an existing name continues its tally and sets
            // the (private) current-phase pointer — exact restoration.
            m.enter_phase(&name);
        }
        _ => return Err(CheckpointError::Corrupt("bad current-phase tag")),
    }
    Ok(m)
}

fn encode_oplog(e: &mut Enc, log: &OpLog) {
    e.usize(log.len());
    let mut prev_round = 0u32;
    for ev in log.events() {
        // Rounds are non-decreasing: delta-encode them so long recorded
        // runs stay one byte per event here.
        e.varint((ev.round - prev_round) as u64);
        prev_round = ev.round;
        e.u8(match ev.kind {
            OpKind::Push => 0,
            OpKind::Pull => 1,
            OpKind::PullUnanswered => 2,
        });
        e.varint(ev.from as u64);
        e.varint(ev.to as u64);
    }
}

fn decode_oplog(d: &mut Dec) -> Result<OpLog, CheckpointError> {
    let mut log = OpLog::new();
    let count = d.len_capped()?;
    let mut round = 0u32;
    for _ in 0..count {
        let delta = u32::try_from(d.varint()?)
            .map_err(|_| CheckpointError::Corrupt("op round overflows u32"))?;
        round = round
            .checked_add(delta)
            .ok_or(CheckpointError::Corrupt("op round overflows u32"))?;
        let kind = match d.u8()? {
            0 => OpKind::Push,
            1 => OpKind::Pull,
            2 => OpKind::PullUnanswered,
            _ => return Err(CheckpointError::Corrupt("bad op kind")),
        };
        let from = decode_agent_id(d)?;
        let to = decode_agent_id(d)?;
        log.record(round, kind, from, to);
    }
    Ok(log)
}

// ---------------------------------------------------------------------
// Whole-network snapshot / restore
// ---------------------------------------------------------------------

/// Serialize a fully honest network at its current round boundary.
///
/// Errors with [`CheckpointError::UnsupportedAgent`] if any slot is not
/// [`AgentSlot::Honest`] — deviating strategies carry private state this
/// module cannot see, and a silent partial capture would violate the
/// bit-identity contract.
pub fn checkpoint_network(
    net: &Network<Msg, AgentSlot>,
    cfg: &RunConfig,
    seed: u64,
) -> Result<Vec<u8>, CheckpointError> {
    let mut cores: Vec<&ProtocolCore> = Vec::with_capacity(net.n());
    for (i, slot) in net.agents().iter().enumerate() {
        match slot {
            AgentSlot::Honest(h) => cores.push(h.core()),
            other => {
                let role = match other.role() {
                    Role::Deviator(name) => name,
                    Role::Honest => "custom",
                };
                return Err(CheckpointError::UnsupportedAgent { id: i as AgentId, role });
            }
        }
    }
    let state = net.engine_state();
    let mut e = Enc::new();
    encode_header(
        &mut e,
        &Header {
            version: FORMAT_VERSION,
            seed,
            config_fingerprint: config_fingerprint(cfg),
            n: net.n(),
            round: state.round,
        },
    );
    encode_engine(&mut e, &state, net.n());
    encode_metrics(&mut e, net.metrics());
    encode_oplog(&mut e, net.oplog());
    let mut pools = build_pools(&cores);
    encode_pools(&mut e, &pools);
    for core in &cores {
        encode_core(&mut e, core, &mut pools);
    }
    Ok(e.buf)
}

/// A network rebuilt from a checkpoint, ready to be driven from
/// [`RestoredRun::round`] to completion.
pub struct RestoredRun {
    /// The restored network (fully honest agents).
    pub net: Network<Msg, AgentSlot>,
    /// The run seed, read from the checkpoint header.
    pub seed: u64,
    /// The round boundary the snapshot was taken at.
    pub round: usize,
}

/// Rebuild a run from checkpoint bytes under `cfg`.
///
/// The header is validated **before** any state is constructed: bad
/// magic, an unknown version, an `n` mismatch, or a config-fingerprint
/// mismatch all error out cleanly without deserializing the body.
pub fn restore_network(cfg: &RunConfig, bytes: &[u8]) -> Result<RestoredRun, CheckpointError> {
    let mut d = Dec::new(bytes);
    let header = decode_header(&mut d)?;
    if header.n != cfg.n {
        return Err(CheckpointError::NMismatch { expected: cfg.n, found: header.n });
    }
    let expected = config_fingerprint(cfg);
    if header.config_fingerprint != expected {
        return Err(CheckpointError::ConfigMismatch {
            expected,
            found: header.config_fingerprint,
        });
    }
    let engine = decode_engine(&mut d, header.n, header.round)?;
    let metrics = decode_metrics(&mut d)?;
    let oplog = decode_oplog(&mut d)?;
    let (intent_pool, cert_pool) = decode_pools(&mut d)?;
    let (params, _colors, faults, topology, env, net_cfg) = network_ingredients(cfg, header.seed);
    let mut agents = Vec::with_capacity(header.n);
    for i in 0..header.n {
        let core = decode_core(&mut d, i as AgentId, params, &intent_pool, &cert_pool)?;
        agents.push(AgentSlot::honest(core));
    }
    d.done()?;
    let mut net = Network::with_config(topology, env, agents, faults, net_cfg);
    net.restore_engine_state(engine, metrics, oplog);
    Ok(RestoredRun { net, seed: header.seed, round: header.round })
}

// ---------------------------------------------------------------------
// The checkpointing phase-clock driver
// ---------------------------------------------------------------------

/// Drive `net` from its current round to completion under the
/// synchronous phase clock, emitting a checkpoint into `sink` every
/// `every` rounds (`None` = never). Operation-for-operation identical to
/// [`crate::runner::drive_network`] when started from round 0 — phases
/// are entered once each, at the same points, and `run`/`run_staged`
/// chunking is bit-invariant — and it picks up mid-phase restores by
/// re-entering the in-flight phase label (which continues its metrics
/// tally; the metering contract).
pub fn drive_with_checkpoints(
    net: &mut Network<Msg, AgentSlot>,
    cfg: &RunConfig,
    seed: u64,
    every: Option<usize>,
    sink: &mut dyn FnMut(usize, &[u8]),
) -> Result<(), CheckpointError> {
    let params = cfg.params();
    let schedule = params.sync_schedule();
    let q = params.q;
    let total = if cfg.skip_coherence { 3 * q } else { 4 * q };
    let staged = crate::runner::use_staged_engine(cfg);
    let mut entered: Option<&'static str> = None;
    while net.round() < total {
        let name = schedule.phase_of(net.round()).name();
        if entered != Some(name) {
            net.enter_phase(name);
            entered = Some(name);
        }
        if staged {
            net.run_staged(1);
        } else {
            net.run(1);
        }
        if let Some(k) = every {
            if k > 0 && net.round() % k == 0 {
                let bytes = checkpoint_network(net, cfg, seed)?;
                sink(net.round(), &bytes);
            }
        }
    }
    net.finalize();
    Ok(())
}

/// [`crate::run_protocol`], emitting a checkpoint every `every` rounds.
/// The report is bit-identical to the checkpoint-free run.
pub fn run_protocol_with_checkpoints(
    cfg: &RunConfig,
    seed: u64,
    every: usize,
    sink: &mut dyn FnMut(usize, &[u8]),
) -> Result<RunReport, CheckpointError> {
    let mut net = build_network_slots(cfg, seed, &mut honest_slot_factory);
    drive_with_checkpoints(&mut net, cfg, seed, Some(every), sink)?;
    Ok(collect_report(&net, cfg))
}

/// Restore from checkpoint bytes and run to completion. The returned
/// report is bit-identical to the straight-through run of the same
/// `(cfg, seed)` — the resume-equivalence contract.
pub fn resume_protocol(cfg: &RunConfig, bytes: &[u8]) -> Result<RunReport, CheckpointError> {
    resume_protocol_with_checkpoints(cfg, bytes, None, &mut |_, _| {})
}

/// [`resume_protocol`], itself emitting further checkpoints (so a
/// resumed mega-run stays resumable).
pub fn resume_protocol_with_checkpoints(
    cfg: &RunConfig,
    bytes: &[u8],
    every: Option<usize>,
    sink: &mut dyn FnMut(usize, &[u8]),
) -> Result<RunReport, CheckpointError> {
    let restored = restore_network(cfg, bytes)?;
    let mut net = restored.net;
    drive_with_checkpoints(&mut net, cfg, restored.seed, every, sink)?;
    Ok(collect_report(&net, cfg))
}

/// The checkpoint rounds a driver with cadence `every` emits for a run
/// of `total` rounds: multiples of `every` in `[every, total]` (a
/// snapshot exactly at `total` is legal — resume just finalizes).
pub fn checkpoint_rounds(total: usize, every: usize) -> Vec<usize> {
    if every == 0 {
        return Vec::new();
    }
    (1..=total / every).map(|i| i * every).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let mut e = Enc::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            e.varint(v);
        }
        let mut d = Dec::new(&e.buf);
        for &v in &values {
            assert_eq!(d.varint().unwrap(), v);
        }
        d.done().unwrap();
    }

    #[test]
    fn varint_overflow_is_corrupt() {
        // 11 continuation bytes can never be a valid u64 varint.
        let bytes = [0xffu8; 11];
        assert!(matches!(
            Dec::new(&bytes).varint(),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn bool_packing_round_trips() {
        for n in [0usize, 1, 7, 8, 9, 64, 65] {
            let flags: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut e = Enc::new();
            e.bools(&flags);
            let mut d = Dec::new(&e.buf);
            assert_eq!(d.bools(n).unwrap(), flags);
        }
    }

    #[test]
    fn header_round_trips_and_rejects() {
        let h = Header {
            version: FORMAT_VERSION,
            seed: 0xdead_beef,
            config_fingerprint: 42,
            n: 1024,
            round: 96,
        };
        let mut e = Enc::new();
        encode_header(&mut e, &h);
        assert_eq!(peek_header(&e.buf).unwrap(), h);
        // Wrong version tag.
        let mut bad = e.buf.clone();
        bad[4] = 99;
        assert_eq!(
            peek_header(&bad),
            Err(CheckpointError::WrongVersion { found: 99 })
        );
        // Bad magic.
        let mut bad = e.buf.clone();
        bad[0] = b'X';
        assert_eq!(peek_header(&bad), Err(CheckpointError::BadMagic));
        // Truncation anywhere in the header.
        for cut in 0..e.buf.len() {
            assert_eq!(peek_header(&e.buf[..cut]), Err(CheckpointError::Truncated));
        }
    }

    #[test]
    fn checkpoint_rounds_cadence() {
        assert_eq!(checkpoint_rounds(96, 24), vec![24, 48, 72, 96]);
        assert_eq!(checkpoint_rounds(96, 40), vec![40, 80]);
        assert_eq!(checkpoint_rounds(96, 0), Vec::<usize>::new());
        assert_eq!(checkpoint_rounds(10, 96), Vec::<usize>::new());
    }
}
