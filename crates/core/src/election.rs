//! Fair leader election: the special case `c_u = u`.
//!
//! The paper (§1, §2): "the well-known fair leader election problem is the
//! special case of the fair consensus problem where the color initially
//! supported by each agent is his own ID", so every active agent must be
//! elected with probability `1/|A|`. Experiment E9 validates this
//! uniformity with a χ² test over many runs.

use crate::outcome::Outcome;
use crate::runner::{run_protocol, RunConfig, RunReport};
use gossip_net::fault::Placement;
use gossip_net::ids::AgentId;

/// Result of one leader-election run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectionResult {
    /// The elected leader's id.
    Leader(AgentId),
    /// The protocol failed.
    Failed,
}

/// Configuration for fair leader election on `n` agents.
pub fn election_config(n: usize, gamma: f64) -> RunConfig {
    RunConfig::builder(n).leader_election().gamma(gamma).build()
}

/// Configuration for fair leader election with faults.
pub fn election_config_with_faults(
    n: usize,
    gamma: f64,
    alpha: f64,
    placement: Placement,
) -> RunConfig {
    RunConfig::builder(n)
        .leader_election()
        .gamma(gamma)
        .faults(alpha, placement)
        .build()
}

/// Run one fair leader election.
pub fn elect_leader(cfg: &RunConfig, seed: u64) -> ElectionResult {
    let report = run_protocol(cfg, seed);
    result_of(&report)
}

/// Interpret a run report as an election result (the winning color *is*
/// the leader's id in leader-election mode).
pub fn result_of(report: &RunReport) -> ElectionResult {
    match report.outcome {
        Outcome::Consensus(c) => ElectionResult::Leader(c as AgentId),
        Outcome::Fail => ElectionResult::Failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn election_elects_some_agent() {
        let cfg = election_config(32, 3.0);
        match elect_leader(&cfg, 99) {
            ElectionResult::Leader(id) => assert!((id as usize) < 32),
            ElectionResult::Failed => panic!("fault-free election must succeed"),
        }
    }

    #[test]
    fn elected_leader_is_the_certificate_owner() {
        let cfg = election_config(32, 3.0);
        let report = run_protocol(&cfg, 5);
        match (result_of(&report), report.winner) {
            (ElectionResult::Leader(l), Some(w)) => assert_eq!(l, w),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn faulty_agents_are_never_elected() {
        let cfg = election_config_with_faults(32, 4.0, 0.25, Placement::LowIds);
        for seed in 0..10 {
            match elect_leader(&cfg, seed) {
                ElectionResult::Leader(id) => {
                    assert!(id >= 8, "faulty low-id agent {id} was elected");
                }
                ElectionResult::Failed => {} // rare but legal
            }
        }
    }

    #[test]
    fn different_seeds_elect_different_leaders() {
        let cfg = election_config(16, 3.0);
        let mut leaders = std::collections::HashSet::new();
        for seed in 0..25 {
            if let ElectionResult::Leader(id) = elect_leader(&cfg, seed) {
                leaders.insert(id);
            }
        }
        assert!(
            leaders.len() >= 5,
            "25 elections on 16 agents should spread: {leaders:?}"
        );
    }
}
