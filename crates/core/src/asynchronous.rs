//! The asynchronous (sequential) GOSSIP extension.
//!
//! The paper's Conclusions pose as an open problem "the study of this
//! problem in the asynchronous (i.e. sequential) GOSSIP model where, at
//! every round, only one (possibly random) agent is awake". This module
//! implements the natural adaptation of protocol `P` to that model:
//!
//! * Global ticks replace rounds; each tick wakes one uniformly random
//!   agent, which performs one complete operation.
//! * Each phase is stretched to `slack·n·q` ticks. An agent's activations
//!   within a phase are `Binomial(slack·n·q, 1/n)` (mean `slack·q`), so
//!   with `slack ≥ 2` every agent is activated at least `q` times per
//!   phase w.h.p. — enough to send all `q` declared votes, make `≥ q`
//!   commitment pulls, and participate in Find-Min/Coherence.
//! * Agents act purely by the global tick's phase; the per-agent protocol
//!   logic ([`crate::engine::ProtocolCore`]) is reused *unchanged* (it
//!   tracks its own progress inside each phase), which is the point of
//!   keeping the core schedule-agnostic.
//!
//! If an unlucky agent gets fewer than `q` voting activations, some of its
//! declared votes are never delivered and Verification can fail the run —
//! the failure probability decays exponentially in `q` (measured in E12).
//!
//! Two drivers share the scheduler discipline:
//!
//! * [`run_protocol_async`] — the tick-driven arm: every operation
//!   completes (pull round-trip included) inside its tick. This is the
//!   deterministic-replay baseline all historical digests pin.
//! * [`run_protocol_events`] — the event-driven arm
//!   ([`gossip_net::network::Network::drive_events`]): messages travel
//!   through a delivery queue with per-message delays drawn from
//!   [`DELAY_STREAM`]. With `max_delay == 0` no delay draws are consumed
//!   and the run is **bit-identical** to `run_protocol_async` (pinned by
//!   `tests/event_runtime.rs`); with `max_delay > 0` replies can outlive
//!   the phase budget, and the terminal
//!   [`drain_in_flight`](gossip_net::network::Network::drain_in_flight)
//!   keeps the metering contract honest (`messages_sent - undelivered`
//!   == handler invocations, in-flight messages counted undelivered).

use crate::agent_plane::AgentSlot;
use crate::engine::ProtocolCore;
use crate::params::{Params, Phase};
use crate::runner::{build_network_slots, collect_report, RunConfig, RunReport};
use gossip_net::ids::{AgentId, ColorId};
use gossip_net::rng::DetRng;

/// Scheduler RNG stream label: the tick-by-tick wake sequence is
/// `DetRng::seeded(seed, SCHEDULER_STREAM)`. Public so external drivers
/// (the `rfc-node` lockstep session) can reproduce the exact wake
/// sequence of a simulated run.
pub const SCHEDULER_STREAM: u64 = 0x5EC;

/// Delivery-delay RNG stream label for [`run_protocol_events`]. Distinct
/// from every other stream in `runner::streams`, so turning delays on
/// (or off) never perturbs agent, color, fault, loss, or scheduler
/// randomness.
pub const DELAY_STREAM: u64 = 0xDE1A;

/// Run protocol `P` under the sequential-GOSSIP scheduler.
///
/// `slack` multiplies the per-phase tick budget (`slack·n·q` ticks per
/// phase); `slack = 2` already succeeds w.h.p. for moderate `γ`.
///
/// # Panics
///
/// Panics (with the [`crate::params::ScheduleError`] message) if
/// `slack·n·q` overflows `usize` — use [`Params::try_async_schedule`] to
/// pre-flight landmark-scale budgets on narrow targets.
pub fn run_protocol_async(cfg: &RunConfig, seed: u64, slack: usize) -> RunReport {
    assert!(slack >= 1);
    let params = cfg.params();
    // Checked: a silent wrap here would truncate the per-phase tick
    // loop below (each phase runs exactly `schedule.phase_len` ticks).
    let schedule = match params.try_async_schedule(slack) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    };
    let mut factory = move |id: AgentId,
                            params: Params,
                            color: ColorId,
                            rng: DetRng,
                            topo: &gossip_net::topology::Topology| {
        AgentSlot::honest(ProtocolCore::new_on(topo, id, params, schedule, color, rng))
    };
    let mut net = build_network_slots(cfg, seed, &mut factory);
    let mut scheduler = DetRng::seeded(seed, SCHEDULER_STREAM);
    for phase in Phase::COMMUNICATING {
        net.enter_phase(phase.name());
        net.run_async(schedule.phase_len, &mut scheduler);
    }
    net.finalize();
    collect_report(&net, cfg)
}

/// Run protocol `P` on the **event-driven** runtime: the same
/// sequential-GOSSIP wake schedule as [`run_protocol_async`], but every
/// message is enqueued with a delivery delay uniform in
/// `[0, max_delay]` ticks per leg, drawn from [`DELAY_STREAM`].
///
/// `max_delay == 0` is the digest-pinned replay arm: no delay draws are
/// consumed and the report is bit-identical to `run_protocol_async(cfg,
/// seed, slack)`. With `max_delay > 0`, messages can land ticks after
/// they were sent — in a later phase, or never (budget expiry): the
/// terminal drain counts those metered-but-undelivered, per the
/// metering contract.
pub fn run_protocol_events(
    cfg: &RunConfig,
    seed: u64,
    slack: usize,
    max_delay: usize,
) -> RunReport {
    assert!(slack >= 1);
    let params = cfg.params();
    let schedule = match params.try_async_schedule(slack) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    };
    let mut factory = move |id: AgentId,
                            params: Params,
                            color: ColorId,
                            rng: DetRng,
                            topo: &gossip_net::topology::Topology| {
        AgentSlot::honest(ProtocolCore::new_on(topo, id, params, schedule, color, rng))
    };
    let mut net = build_network_slots(cfg, seed, &mut factory);
    let mut scheduler = DetRng::seeded(seed, SCHEDULER_STREAM);
    let mut delays = DetRng::seeded(seed, DELAY_STREAM);
    for phase in Phase::COMMUNICATING {
        net.enter_phase(phase.name());
        // The delivery queue deliberately survives the phase boundary: a
        // delayed message sent near the end of one phase lands during
        // the next, exactly as on a real wire.
        net.drive_events(schedule.phase_len, &mut scheduler, &mut delays, max_delay);
    }
    // Budget over: whatever is still in flight was metered at send but
    // will never reach a handler — count it undelivered.
    net.drain_in_flight();
    net.finalize();
    collect_report(&net, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;

    #[test]
    fn async_run_reaches_consensus() {
        let cfg = RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build();
        let report = run_protocol_async(&cfg, 21, 3);
        assert!(
            report.outcome.is_consensus(),
            "async run should succeed: {:?}",
            report.outcome
        );
    }

    #[test]
    fn async_ticks_are_theta_n_log_n_per_phase() {
        let cfg = RunConfig::builder(24).gamma(2.0).colors(vec![12, 12]).build();
        let params = cfg.params();
        let report = run_protocol_async(&cfg, 3, 2);
        assert_eq!(
            report.metrics.ticks as usize,
            4 * 2 * 24 * params.q,
            "each phase runs slack·n·q ticks"
        );
    }

    #[test]
    fn async_is_deterministic() {
        let cfg = RunConfig::builder(16).gamma(3.0).colors(vec![8, 8]).build();
        let a = run_protocol_async(&cfg, 77, 2);
        let b = run_protocol_async(&cfg, 77, 2);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
    }

    #[test]
    fn insufficient_slack_can_fail() {
        // With slack = 1 some agent misses voting activations reasonably
        // often at small n; across seeds we should observe at least one
        // failure AND at least one success (the mechanism works, it is
        // just not w.h.p. at this slack).
        let cfg = RunConfig::builder(12).gamma(1.0).colors(vec![6, 6]).build();
        let outcomes: Vec<bool> = (0..30)
            .map(|s| run_protocol_async(&cfg, s, 1).outcome.is_consensus())
            .collect();
        assert!(outcomes.iter().any(|&b| b), "some run should succeed");
    }

    #[test]
    fn delay_free_events_match_tick_driven_exactly() {
        // The digest-pinned equivalence lives in tests/event_runtime.rs;
        // this is the in-crate fast check on one config.
        let cfg = RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build();
        let tick = run_protocol_async(&cfg, 21, 3);
        let ev = run_protocol_events(&cfg, 21, 3, 0);
        assert_eq!(tick.outcome, ev.outcome);
        assert_eq!(tick.metrics.messages_sent, ev.metrics.messages_sent);
        assert_eq!(tick.metrics.bits_sent, ev.metrics.bits_sent);
        assert_eq!(tick.metrics.undelivered, ev.metrics.undelivered);
        assert_eq!(tick.metrics.ticks, ev.metrics.ticks);
    }

    #[test]
    fn delayed_events_still_reach_consensus() {
        // Small delays relative to the phase budget: the protocol has
        // enough slack to absorb late deliveries.
        let cfg = RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build();
        let report = run_protocol_events(&cfg, 21, 4, 2);
        assert!(
            report.outcome.is_consensus(),
            "delayed run should still succeed: {:?}",
            report.outcome
        );
    }

    #[test]
    fn delayed_events_are_deterministic() {
        let cfg = RunConfig::builder(16).gamma(3.0).colors(vec![8, 8]).build();
        let a = run_protocol_events(&cfg, 9, 3, 5);
        let b = run_protocol_events(&cfg, 9, 3, 5);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
        assert_eq!(a.metrics.bits_sent, b.metrics.bits_sent);
        assert_eq!(a.metrics.undelivered, b.metrics.undelivered);
    }
}
