//! The asynchronous (sequential) GOSSIP extension.
//!
//! The paper's Conclusions pose as an open problem "the study of this
//! problem in the asynchronous (i.e. sequential) GOSSIP model where, at
//! every round, only one (possibly random) agent is awake". This module
//! implements the natural adaptation of protocol `P` to that model:
//!
//! * Global ticks replace rounds; each tick wakes one uniformly random
//!   agent, which performs one complete operation.
//! * Each phase is stretched to `slack·n·q` ticks. An agent's activations
//!   within a phase are `Binomial(slack·n·q, 1/n)` (mean `slack·q`), so
//!   with `slack ≥ 2` every agent is activated at least `q` times per
//!   phase w.h.p. — enough to send all `q` declared votes, make `≥ q`
//!   commitment pulls, and participate in Find-Min/Coherence.
//! * Agents act purely by the global tick's phase; the per-agent protocol
//!   logic ([`crate::engine::ProtocolCore`]) is reused *unchanged* (it
//!   tracks its own progress inside each phase), which is the point of
//!   keeping the core schedule-agnostic.
//!
//! If an unlucky agent gets fewer than `q` voting activations, some of its
//! declared votes are never delivered and Verification can fail the run —
//! the failure probability decays exponentially in `q` (measured in E12).

use crate::agent_plane::AgentSlot;
use crate::engine::ProtocolCore;
use crate::params::{Params, Phase};
use crate::runner::{build_network_slots, collect_report, RunConfig, RunReport};
use gossip_net::ids::{AgentId, ColorId};
use gossip_net::rng::DetRng;

/// Scheduler RNG stream label.
const SCHEDULER_STREAM: u64 = 0x5EC;

/// Run protocol `P` under the sequential-GOSSIP scheduler.
///
/// `slack` multiplies the per-phase tick budget (`slack·n·q` ticks per
/// phase); `slack = 2` already succeeds w.h.p. for moderate `γ`.
pub fn run_protocol_async(cfg: &RunConfig, seed: u64, slack: usize) -> RunReport {
    assert!(slack >= 1);
    let params = cfg.params();
    let schedule = params.async_schedule(slack);
    let mut factory = move |id: AgentId,
                            params: Params,
                            color: ColorId,
                            rng: DetRng,
                            topo: &gossip_net::topology::Topology| {
        AgentSlot::honest(ProtocolCore::new_on(topo, id, params, schedule, color, rng))
    };
    let mut net = build_network_slots(cfg, seed, &mut factory);
    let mut scheduler = DetRng::seeded(seed, SCHEDULER_STREAM);
    for phase in Phase::COMMUNICATING {
        net.enter_phase(phase.name());
        net.run_async(schedule.phase_len, &mut scheduler);
    }
    net.finalize();
    collect_report(&net, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;

    #[test]
    fn async_run_reaches_consensus() {
        let cfg = RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build();
        let report = run_protocol_async(&cfg, 21, 3);
        assert!(
            report.outcome.is_consensus(),
            "async run should succeed: {:?}",
            report.outcome
        );
    }

    #[test]
    fn async_ticks_are_theta_n_log_n_per_phase() {
        let cfg = RunConfig::builder(24).gamma(2.0).colors(vec![12, 12]).build();
        let params = cfg.params();
        let report = run_protocol_async(&cfg, 3, 2);
        assert_eq!(
            report.metrics.ticks as usize,
            4 * 2 * 24 * params.q,
            "each phase runs slack·n·q ticks"
        );
    }

    #[test]
    fn async_is_deterministic() {
        let cfg = RunConfig::builder(16).gamma(3.0).colors(vec![8, 8]).build();
        let a = run_protocol_async(&cfg, 77, 2);
        let b = run_protocol_async(&cfg, 77, 2);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
    }

    #[test]
    fn insufficient_slack_can_fail() {
        // With slack = 1 some agent misses voting activations reasonably
        // often at small n; across seeds we should observe at least one
        // failure AND at least one success (the mechanism works, it is
        // just not w.h.p. at this slack).
        let cfg = RunConfig::builder(12).gamma(1.0).colors(vec![6, 6]).build();
        let outcomes: Vec<bool> = (0..30)
            .map(|s| run_protocol_async(&cfg, s, 1).outcome.is_consensus())
            .collect();
        assert!(outcomes.iter().any(|&b| b), "some run should succeed");
    }
}
