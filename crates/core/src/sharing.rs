//! The shared-payload pointer for protocol messages.
//!
//! Intention lists and certificates travel the wire thousands of times
//! per run; sharing one allocation per payload is what keeps Find-Min's
//! `Θ(n log n)` certificate hops O(1) each. Every *trial* is
//! single-threaded by construction — parallelism lives at the trial
//! level in `experiments::parallel`, where each worker owns its whole
//! network — so the payload pointer is [`std::rc::Rc`]: a wire hop is a
//! non-atomic refcount bump instead of a `lock inc`/`lock dec` pair,
//! which measurably matters on the Monte-Carlo hot path (tens of
//! thousands of hops per trial).
//!
//! If a future engine ever shares payloads *across* threads, swap this
//! alias to `std::sync::Arc` — the APIs match and everything downstream
//! is written against the alias.

pub use std::rc::Rc as Shared;
