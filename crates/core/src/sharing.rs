//! The shared-payload pointer for protocol messages.
//!
//! Intention lists and certificates travel the wire thousands of times
//! per run; sharing one allocation per payload is what keeps Find-Min's
//! `Θ(n log n)` certificate hops O(1) each.
//!
//! The pointer is [`std::sync::Arc`]. Through PR 4 it was `Rc` — every
//! *trial* was single-threaded by construction, with parallelism only at
//! the trial level in `experiments::parallel`. The staged round engine
//! (`gossip_net::network::staged`) changed that invariant: one trial now
//! shards its plan/apply stages across worker threads, so a certificate
//! produced by an agent in one shard is cloned into agent state in
//! another shard — the refcount must be atomic. The uncontended
//! `lock inc`/`lock dec` pair this costs on the sequential path is the
//! price of the sharded engine's existence; the `dispatch` bench tracks
//! it PR over PR.

pub use std::sync::Arc as Shared;
