//! Dispatch equivalence: the monomorphic agent plane (enum jump table,
//! reusable arena) and the boxed-dyn escape hatch are *representations*
//! of the same simulation — for any `(config, seed)` they must produce
//! bit-identical [`RunReport`]s: same decisions, same rounds, same
//! message/bit meters, same winner, same audit.
//!
//! This is the refactor's safety net: any divergence (an extra RNG draw,
//! a reordered delivery, state leaking through an arena reset) shows up
//! here as a hard failure.

use gossip_net::dynamics::{LossSchedule, PartitionCut, ScenarioScript};
use gossip_net::fault::Placement;
use rfc_core::engine::HonestAgent;
use rfc_core::runner::{
    build_network_slots, collect_report, drive_network, run_protocol, run_protocol_boxed,
    RunConfig, RunReport, TrialArena,
};
use rfc_core::{AgentSlot, ProtocolCore};

/// Field-by-field report equality (audit included when requested).
fn assert_reports_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
    assert_eq!(a.rounds, b.rounds, "{what}: rounds");
    assert_eq!(a.winner, b.winner, "{what}: winner");
    assert_eq!(a.decisions, b.decisions, "{what}: decisions");
    assert_eq!(a.initial_colors, b.initial_colors, "{what}: colors");
    assert_eq!(a.n_active, b.n_active, "{what}: n_active");
    assert_eq!(a.verify_failures, b.verify_failures, "{what}: verify_failures");
    assert_eq!(a.metrics, b.metrics, "{what}: metrics (messages/bits/phases)");
    assert_eq!(a.audit, b.audit, "{what}: audit");
}

fn configs() -> Vec<RunConfig> {
    vec![
        RunConfig::builder(32).gamma(3.0).colors(vec![16, 16]).build(),
        RunConfig::builder(48)
            .gamma(4.0)
            .colors(vec![16, 16, 16])
            .faults(0.25, Placement::Random { seed: 5 })
            .record_ops(true)
            .build(),
        RunConfig::builder(24)
            .gamma(3.0)
            .colors(vec![12, 12])
            .message_loss(0.2)
            .build(),
    ]
}

/// Dynamic-adversity configs: churn, a partition window, and a loss
/// burst — every representation (enum/boxed/arena) must agree on these
/// too, including the mutable `FaultState` threaded through resets.
fn dynamic_configs() -> Vec<RunConfig> {
    let n = 32;
    let q = RunConfig::builder(n).gamma(3.0).build().params().q;
    vec![
        RunConfig::builder(n)
            .gamma(3.0)
            .colors(vec![16, 16])
            .scenario(
                ScenarioScript::new()
                    .crash(q / 2, (24..32).collect())
                    .recover(2 * q, (24..32).collect()),
            )
            .build(),
        RunConfig::builder(n)
            .gamma(3.0)
            .colors(vec![16, 16])
            .record_ops(true)
            .scenario(
                ScenarioScript::new()
                    .partition(2 * q, PartitionCut::split_at(n, 16))
                    .heal(2 * q + q / 2),
            )
            .build(),
        RunConfig::builder(n)
            .gamma(3.0)
            .colors(vec![16, 16])
            .loss_schedule(LossSchedule::burst(0.1, 0.8, q, q + 4))
            .scenario(ScenarioScript::new().crash(3 * q, vec![0, 1]))
            .build(),
    ]
}

#[test]
fn enum_path_equals_boxed_dyn_path() {
    for (ci, cfg) in configs().iter().enumerate() {
        for seed in [0u64, 7, 0xDEAD] {
            let fast = run_protocol(cfg, seed);
            let boxed = run_protocol_boxed(cfg, seed);
            assert_reports_identical(&fast, &boxed, &format!("cfg {ci} seed {seed}"));
        }
    }
}

#[test]
fn custom_escape_hatch_equals_enum_fast_path() {
    // The same honest agent, routed through `AgentSlot::Custom(Box<dyn …>)`
    // instead of `AgentSlot::Honest`: one extra indirection, zero
    // behavioral difference.
    for (ci, cfg) in configs().iter().enumerate() {
        for seed in [1u64, 42] {
            let fast = run_protocol(cfg, seed);
            let mut custom_factory =
                |id, params: rfc_core::Params, color, rng, topo: &gossip_net::topology::Topology| {
                    let core =
                        ProtocolCore::new_on(topo, id, params, params.sync_schedule(), color, rng);
                    AgentSlot::custom(HonestAgent::new(core))
                };
            let mut net = build_network_slots(cfg, seed, &mut custom_factory);
            drive_network(&mut net, cfg);
            let custom = collect_report(&net, cfg);
            assert_reports_identical(&fast, &custom, &format!("custom cfg {ci} seed {seed}"));
        }
    }
}

#[test]
fn arena_reuse_equals_fresh_networks() {
    // One arena, many trials across *different* configs and seeds: every
    // report must match a freshly built network's, in any order — no
    // state may survive a reset.
    let cfgs = configs();
    let mut arena = TrialArena::new();
    let schedule: Vec<(usize, u64)> = vec![(0, 3), (1, 3), (0, 9), (2, 11), (1, 9), (0, 3)];
    for (ci, seed) in schedule {
        let from_arena = arena.run_protocol(&cfgs[ci], seed);
        let fresh = run_protocol(&cfgs[ci], seed);
        assert_reports_identical(&from_arena, &fresh, &format!("arena cfg {ci} seed {seed}"));
    }
}

#[test]
fn empty_script_and_constant_schedule_equal_the_static_path() {
    // The acceptance bar for the dynamics subsystem: spelling the static
    // configuration through the new vocabulary — an explicitly empty
    // `ScenarioScript` and a constant `LossSchedule` — must produce
    // bit-identical reports to the legacy `loss_probability`-only path
    // (which itself is pinned against the pre-dynamics engine by the
    // golden-run corpus).
    for (p, seed) in [(0.0f64, 3u64), (0.2, 7), (0.2, 0xBEEF)] {
        let legacy = RunConfig::builder(24)
            .gamma(3.0)
            .colors(vec![12, 12])
            .message_loss(p)
            .build();
        let spelled = RunConfig::builder(24)
            .gamma(3.0)
            .colors(vec![12, 12])
            .message_loss(p)
            .loss_schedule(LossSchedule::constant(p))
            .scenario(ScenarioScript::new())
            .build();
        let a = run_protocol(&legacy, seed);
        let b = run_protocol(&spelled, seed);
        assert_reports_identical(&a, &b, &format!("static spelling p={p} seed={seed}"));
    }
}

#[test]
fn dynamic_scenarios_enum_equals_boxed_dyn() {
    for (ci, cfg) in dynamic_configs().iter().enumerate() {
        for seed in [2u64, 19] {
            let fast = run_protocol(cfg, seed);
            let boxed = run_protocol_boxed(cfg, seed);
            assert_reports_identical(&fast, &boxed, &format!("dynamic cfg {ci} seed {seed}"));
        }
    }
}

#[test]
fn arena_reuse_equals_fresh_networks_under_dynamic_scenarios() {
    // One arena cycling through churn, partition and burst configs in an
    // interleaved schedule: every report must match a fresh network's —
    // no `FaultState`, partition overlay, event cursor or schedule state
    // may leak through a reset.
    let cfgs = dynamic_configs();
    let mut arena = TrialArena::new();
    let schedule: Vec<(usize, u64)> =
        vec![(0, 1), (1, 1), (2, 1), (0, 8), (2, 8), (1, 8), (0, 1)];
    for (ci, seed) in schedule {
        let from_arena = arena.run_protocol(&cfgs[ci], seed);
        let fresh = run_protocol(&cfgs[ci], seed);
        assert_reports_identical(
            &from_arena,
            &fresh,
            &format!("dynamic arena cfg {ci} seed {seed}"),
        );
    }
    // A dynamic trial must not contaminate a following static one.
    let static_cfg = RunConfig::builder(32).gamma(3.0).colors(vec![16, 16]).build();
    let from_arena = arena.run_protocol(&static_cfg, 5);
    let fresh = run_protocol(&static_cfg, 5);
    assert_reports_identical(&from_arena, &fresh, "static after dynamic");
}

#[test]
fn single_instance_plane_equals_legacy_path() {
    // The instance plane's safety net: one consensus instance pushed
    // through the multiplexer (batched messages, per-instance clocks and
    // meters) must be a pure generalization — its legacy-shaped report
    // is field-identical to `run_protocol`'s, for the monolithic engine,
    // the staged engine at several thread counts, and the sharded
    // per-agent discipline, lossy configs included.
    let bases = vec![
        RunConfig::builder(32).gamma(3.0).colors(vec![16, 16]).build(),
        RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).message_loss(0.2).build(),
        RunConfig::builder(32)
            .gamma(3.0)
            .colors(vec![16, 16])
            .faults(0.25, Placement::Random { seed: 5 })
            .build(),
    ];
    for (ci, base) in bases.iter().enumerate() {
        for threads in [1usize, 2, 8] {
            let mut cfg = base.clone();
            cfg.threads = threads;
            let seed = 13;
            let legacy = run_protocol(&cfg, seed);
            let plane = rfc_core::run_plane(&cfg, seed);
            let mux = plane.legacy.as_ref().expect("single-consensus plan has a legacy view");
            assert_reports_identical(
                mux,
                &legacy,
                &format!("mux cfg {ci} threads {threads}"),
            );
            // The per-instance view agrees with the whole-run view.
            assert_eq!(plane.instances.len(), 1);
            assert_eq!(plane.instances[0].outcome.as_ref(), Some(&legacy.outcome));
        }
        // Sharded per-agent discipline (its own pinned stream family).
        let mut cfg = base.clone();
        cfg.rng_discipline = gossip_net::rng::RngDiscipline::PerAgent;
        cfg.threads = 4;
        let legacy = run_protocol(&cfg, 29);
        let plane = rfc_core::run_plane(&cfg, 29);
        assert_reports_identical(
            plane.legacy.as_ref().expect("legacy view"),
            &legacy,
            &format!("mux sharded cfg {ci}"),
        );
    }
}

#[test]
fn soa_engine_spellings_agree_oplog_event_for_event() {
    // The SoA agent plane (bitset flags, flat vote lanes) plus the
    // parallel CSR ledger build are *spellings* of one simulation.
    // Under the Sequential discipline three routes exist — monolithic
    // (`threads = 1`), staged with real shards (`threads = 4`, floor
    // disabled), and the small-n shard-floor fallback (`threads = 4`,
    // default floor) — and they must agree on the full `RunReport` AND
    // on the recorded op-log event for event: same (round, kind, from,
    // to) at the same index, which is stronger than any digest.
    use rfc_core::runner::honest_slot_factory;
    for (ci, base) in configs().iter().enumerate() {
        let mut mono = base.clone();
        mono.record_ops = true;
        let mut staged = mono.clone();
        staged.threads = 4;
        staged.shard_floor = Some(0);
        let mut fallback = mono.clone();
        fallback.threads = 4; // default floor: these n are all below it
        for seed in [3u64, 0xFEED] {
            let mut runs = Vec::new();
            for (what, cfg) in
                [("monolithic", &mono), ("staged", &staged), ("fallback", &fallback)]
            {
                let mut net = build_network_slots(cfg, seed, &mut honest_slot_factory);
                drive_network(&mut net, cfg);
                let report = collect_report(&net, cfg);
                runs.push((what, report, net.oplog().events().to_vec()));
            }
            let (_, report0, ops0) = &runs[0];
            assert!(!ops0.is_empty(), "cfg {ci}: op-log recorded nothing");
            for (what, report, ops) in &runs[1..] {
                assert_reports_identical(
                    report0,
                    report,
                    &format!("cfg {ci} seed {seed} {what}"),
                );
                assert_eq!(
                    ops0.len(),
                    ops.len(),
                    "cfg {ci} seed {seed} {what}: op-log length"
                );
                if let Some(pos) = ops0.iter().zip(ops.iter()).position(|(a, b)| a != b) {
                    panic!(
                        "cfg {ci} seed {seed} {what}: op-log diverged at event {pos}: \
                         {:?} vs {:?}",
                        ops0[pos], ops[pos]
                    );
                }
            }
        }
    }
}

#[test]
fn arena_handles_changing_network_sizes() {
    // Resizing between trials rebuilds what must be rebuilt and nothing
    // else; reports stay exact.
    let mut arena = TrialArena::new();
    for n in [16usize, 64, 16, 32] {
        let cfg = RunConfig::builder(n).gamma(3.0).colors(vec![n - n / 2, n / 2]).build();
        let a = arena.run_protocol(&cfg, 5);
        let f = run_protocol(&cfg, 5);
        assert_reports_identical(&a, &f, &format!("resize n={n}"));
    }
}
