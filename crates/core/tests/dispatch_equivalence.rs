//! Dispatch equivalence: the monomorphic agent plane (enum jump table,
//! reusable arena) and the boxed-dyn escape hatch are *representations*
//! of the same simulation — for any `(config, seed)` they must produce
//! bit-identical [`RunReport`]s: same decisions, same rounds, same
//! message/bit meters, same winner, same audit.
//!
//! This is the refactor's safety net: any divergence (an extra RNG draw,
//! a reordered delivery, state leaking through an arena reset) shows up
//! here as a hard failure.

use gossip_net::fault::Placement;
use rfc_core::engine::HonestAgent;
use rfc_core::runner::{
    build_network_slots, collect_report, drive_network, run_protocol, run_protocol_boxed,
    RunConfig, RunReport, TrialArena,
};
use rfc_core::{AgentSlot, ProtocolCore};

/// Field-by-field report equality (audit included when requested).
fn assert_reports_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.outcome, b.outcome, "{what}: outcome");
    assert_eq!(a.rounds, b.rounds, "{what}: rounds");
    assert_eq!(a.winner, b.winner, "{what}: winner");
    assert_eq!(a.decisions, b.decisions, "{what}: decisions");
    assert_eq!(a.initial_colors, b.initial_colors, "{what}: colors");
    assert_eq!(a.n_active, b.n_active, "{what}: n_active");
    assert_eq!(a.verify_failures, b.verify_failures, "{what}: verify_failures");
    assert_eq!(a.metrics, b.metrics, "{what}: metrics (messages/bits/phases)");
    assert_eq!(a.audit, b.audit, "{what}: audit");
}

fn configs() -> Vec<RunConfig> {
    vec![
        RunConfig::builder(32).gamma(3.0).colors(vec![16, 16]).build(),
        RunConfig::builder(48)
            .gamma(4.0)
            .colors(vec![16, 16, 16])
            .faults(0.25, Placement::Random { seed: 5 })
            .record_ops(true)
            .build(),
        RunConfig::builder(24)
            .gamma(3.0)
            .colors(vec![12, 12])
            .message_loss(0.2)
            .build(),
    ]
}

#[test]
fn enum_path_equals_boxed_dyn_path() {
    for (ci, cfg) in configs().iter().enumerate() {
        for seed in [0u64, 7, 0xDEAD] {
            let fast = run_protocol(cfg, seed);
            let boxed = run_protocol_boxed(cfg, seed);
            assert_reports_identical(&fast, &boxed, &format!("cfg {ci} seed {seed}"));
        }
    }
}

#[test]
fn custom_escape_hatch_equals_enum_fast_path() {
    // The same honest agent, routed through `AgentSlot::Custom(Box<dyn …>)`
    // instead of `AgentSlot::Honest`: one extra indirection, zero
    // behavioral difference.
    for (ci, cfg) in configs().iter().enumerate() {
        for seed in [1u64, 42] {
            let fast = run_protocol(cfg, seed);
            let mut custom_factory =
                |id, params: rfc_core::Params, color, rng, topo: &gossip_net::topology::Topology| {
                    let core =
                        ProtocolCore::new_on(topo, id, params, params.sync_schedule(), color, rng);
                    AgentSlot::custom(HonestAgent::new(core))
                };
            let mut net = build_network_slots(cfg, seed, &mut custom_factory);
            drive_network(&mut net, cfg);
            let custom = collect_report(&net, cfg);
            assert_reports_identical(&fast, &custom, &format!("custom cfg {ci} seed {seed}"));
        }
    }
}

#[test]
fn arena_reuse_equals_fresh_networks() {
    // One arena, many trials across *different* configs and seeds: every
    // report must match a freshly built network's, in any order — no
    // state may survive a reset.
    let cfgs = configs();
    let mut arena = TrialArena::new();
    let schedule: Vec<(usize, u64)> = vec![(0, 3), (1, 3), (0, 9), (2, 11), (1, 9), (0, 3)];
    for (ci, seed) in schedule {
        let from_arena = arena.run_protocol(&cfgs[ci], seed);
        let fresh = run_protocol(&cfgs[ci], seed);
        assert_reports_identical(&from_arena, &fresh, &format!("arena cfg {ci} seed {seed}"));
    }
}

#[test]
fn arena_handles_changing_network_sizes() {
    // Resizing between trials rebuilds what must be rebuilt and nothing
    // else; reports stay exact.
    let mut arena = TrialArena::new();
    for n in [16usize, 64, 16, 32] {
        let cfg = RunConfig::builder(n).gamma(3.0).colors(vec![n - n / 2, n / 2]).build();
        let a = arena.run_protocol(&cfg, 5);
        let f = run_protocol(&cfg, 5);
        assert_reports_identical(&a, &f, &format!("resize n={n}"));
    }
}
