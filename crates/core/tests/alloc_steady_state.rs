//! Steady-state allocation discipline of the SoA agent plane.
//!
//! The struct-of-arrays layout (bitset flags, flat vote lanes, arena-owned
//! scratch) exists so that the hot loop *reuses* memory: after a phase's
//! buffers reach their high-water mark, further rounds of that phase must
//! not touch the allocator at all. This test installs a counting global
//! allocator and proves it — for the monolithic engine and for the staged
//! engine — by warming each communicating phase for a few rounds and then
//! asserting that the remaining rounds of the phase perform **zero**
//! allocations (and zero reallocations).
//!
//! One carve-out: the Voting phase *accumulates* received votes, and an
//! agent's receipt count is Poisson(q)-distributed — the `q + 8` lanes
//! reserved at construction cover the bulk but not every tail agent
//! (reserving a tail-safe bound would cost ~1 KB/agent at 10⁷ scale for
//! memory that is almost never touched). When the tail is crossed the
//! lanes grow geometrically: a handful of *growth events* (3 lane
//! allocations each) per trial, never per round. The Voting assertion
//! is therefore a small constant event bound instead of exact zero.
//!
//! Lives in its own integration-test binary because `#[global_allocator]`
//! is a per-binary choice.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use rfc_core::params::Phase;
use rfc_core::runner::{build_network_slots, honest_slot_factory, RunConfig};
use rfc_core::RngDiscipline;

/// `System`, plus a relaxed counter of every allocating entry point.
///
/// Counting is *armed*, not always-on: the libtest harness's main
/// thread lazily allocates an mpmc waiter context the first time it
/// blocks waiting for a test thread — whether that lands inside a
/// measured window is a scheduling race (the same one
/// `gossip-net/tests/zero_alloc_step.rs` hit). The exact-zero tests
/// run the engine inline on the measuring thread, so they arm only
/// that thread ([`MEASURING`], `const`-init keeps the TLS access
/// allocation-free). The multi-shard test must also see pool-worker
/// allocations (workers grow the data-plane buffers), so it arms
/// [`ALL_THREADS`] instead — its generous per-round ceiling absorbs
/// the harness's couple of stray allocations.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALL_THREADS: AtomicBool = AtomicBool::new(false);

thread_local! {
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

fn count() {
    if ALL_THREADS.load(Ordering::Relaxed) || MEASURING.with(|m| m.get()) {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Drive every communicating phase like `drive_network`, but measure the
/// allocator inside each phase: rounds `[warmup, q)` must be silent.
/// Returns per-phase `(name, allocs_after_warmup)`. `all_threads` picks
/// the arming mode (see [`CountingAlloc`]).
fn measure(
    cfg: &RunConfig,
    seed: u64,
    staged: bool,
    all_threads: bool,
) -> Vec<(&'static str, u64)> {
    let q = cfg.params().q;
    let warmup = 4.min(q);
    let mut net = build_network_slots(cfg, seed, &mut honest_slot_factory);
    let mut out = Vec::new();
    for phase in Phase::COMMUNICATING {
        net.enter_phase(phase.name());
        if staged {
            net.run_staged(warmup);
        } else {
            net.run(warmup);
        }
        let before = alloc_calls();
        if all_threads {
            ALL_THREADS.store(true, Ordering::Relaxed);
        } else {
            MEASURING.with(|m| m.set(true));
        }
        if staged {
            net.run_staged(q - warmup);
        } else {
            net.run(q - warmup);
        }
        if all_threads {
            ALL_THREADS.store(false, Ordering::Relaxed);
        } else {
            MEASURING.with(|m| m.set(false));
        }
        out.push((phase.name(), alloc_calls() - before));
    }
    net.finalize();
    out
}

/// Zero allocations after warm-up, except the Voting carve-out (see the
/// module docs): at most three lane-growth events — 9 allocations —
/// for tail agents whose receipt count outruns the `q + 8` reservation.
/// The bound is a constant per trial; per-round growth (the bug class
/// this suite exists for) would blow past it within a few rounds.
fn assert_steady(engine: &str, phase: &str, allocs: u64) {
    let ceiling = if phase == "voting" { 9 } else { 0 };
    assert!(
        allocs <= ceiling,
        "{engine}: {phase} allocated {allocs}× after warm-up (ceiling {ceiling})"
    );
}

#[test]
fn monolithic_steady_state_rounds_are_zero_alloc() {
    let cfg = RunConfig::builder(64).gamma(3.0).colors(vec![32, 32]).build();
    for (phase, allocs) in measure(&cfg, 7, false, false) {
        assert_steady("monolithic engine", phase, allocs);
    }
}

#[test]
fn staged_single_shard_steady_state_rounds_are_zero_alloc() {
    // The staged engine's scratch (CSR ledgers, delivery bitsets, pull
    // records, per-shard counters) must also reach a high-water mark and
    // stay there. At one shard every stage runs inline — no pool
    // dispatch — so the bound is exactly zero, like the monolithic path.
    let mut cfg = RunConfig::builder(64).gamma(3.0).colors(vec![32, 32]).build();
    cfg.rng_discipline = RngDiscipline::PerAgent;
    for (phase, allocs) in measure(&cfg, 7, true, false) {
        assert_steady("staged engine (1 shard)", phase, allocs);
    }
}

#[test]
fn staged_multi_shard_steady_state_allocs_are_dispatch_only() {
    // With real shards, the only allowed allocator traffic is the
    // ScopedPool's job dispatch: one `Box<dyn FnOnce>` (plus a channel
    // node) per spawned job, a *constant per round* that never grows
    // with rounds run or data volume. The agent-plane and ledger
    // buffers themselves must stay at their high-water mark, which is
    // what the generous-but-constant per-round ceiling pins.
    let mut cfg = RunConfig::builder(64).gamma(3.0).colors(vec![32, 32]).build();
    cfg.rng_discipline = RngDiscipline::PerAgent;
    cfg.threads = 4;
    cfg.shard_floor = Some(0);
    let q = cfg.params().q;
    let measured_rounds = (q - 4.min(q)) as u64;
    // ≤ 4 shards × ~6 dispatch points per round × 2 allocations each.
    let per_round_ceiling = 48;
    for (phase, allocs) in measure(&cfg, 7, true, true) {
        assert!(
            allocs <= measured_rounds * per_round_ceiling,
            "staged engine (4 shards): {phase} allocated {allocs}× over \
             {measured_rounds} rounds — data-plane buffers are growing"
        );
    }
}

#[test]
fn lossy_steady_state_rounds_are_zero_alloc() {
    // Loss draws must come from stream state, not fresh buffers — for
    // the monolithic engine and the staged engine's inline path alike.
    let mut cfg = RunConfig::builder(48)
        .gamma(3.0)
        .colors(vec![24, 24])
        .message_loss(0.2)
        .build();
    for staged in [false, true] {
        if staged {
            cfg.rng_discipline = RngDiscipline::PerAgent;
        }
        for (phase, allocs) in measure(&cfg, 11, staged, false) {
            assert_steady(&format!("lossy run (staged={staged})"), phase, allocs);
        }
    }
}
