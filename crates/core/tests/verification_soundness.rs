//! Verification soundness under randomized tampering.
//!
//! The equilibrium rests on one mechanism: any discrepancy between the
//! winning certificate and what agents committed to is caught by *some*
//! honest verifier. These property tests drive a real protocol run to
//! completion, then apply randomized mutations to the agreed certificate
//! and check that the verifier set rejects every mutation that touches
//! verifiable state — and accepts the genuine certificate.

use gossip_net::rng::DetRng;
use proptest::prelude::*;
use rfc_core::certificate::{CertData, VoteRec};
use rfc_core::engine::{ConsensusAgent, HonestAgent, ProtocolCore};
use rfc_core::runner::{build_network, drive_network, RunConfig};
use rfc_core::Params;
use rfc_core::sharing::Shared;

/// Run a full honest protocol and harvest (verifier cores, winning cert).
fn finished_run(n: usize, seed: u64) -> (Vec<ProtocolCore>, Shared<CertData>) {
    let cfg = RunConfig::builder(n).gamma(3.0).colors(vec![n - n / 2, n / 2]).build();
    let mut factory = |id, params: Params, color, rng: DetRng, topo: &gossip_net::topology::Topology| {
        let core = ProtocolCore::new_on(topo, id, params, params.sync_schedule(), color, rng);
        Box::new(HonestAgent::new(core)) as Box<dyn ConsensusAgent>
    };
    let mut net = build_network(&cfg, seed, &mut factory);
    drive_network(&mut net, &cfg);
    let cert = net
        .agent(0)
        .core()
        .min_cert
        .clone()
        .expect("agent 0 holds a certificate");
    let cores: Vec<ProtocolCore> = (0..n as u32)
        .map(|id| net.agent(id).core().clone())
        .collect();
    (cores, cert)
}

/// Re-run Verification of `cert` against every agent's ledger/self-votes;
/// count rejections.
fn rejections(cores: &[ProtocolCore], cert: &Shared<CertData>) -> usize {
    cores
        .iter()
        .filter(|core| {
            let mut c = (*core).clone();
            c.failed = false;
            c.verify_failure = None;
            c.decided = None;
            c.min_cert = Some(Shared::clone(cert));
            c.finalize_honest();
            c.decision().is_none()
        })
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The genuine winning certificate passes every verifier.
    #[test]
    fn genuine_certificate_verifies_everywhere(seed in any::<u64>()) {
        let (cores, cert) = finished_run(24, seed);
        prop_assert_eq!(rejections(&cores, &cert), 0);
    }

    /// Altering any single vote's value is caught by at least one
    /// verifier (whoever pulled that voter, plus the voter itself via the
    /// self-vote check).
    #[test]
    fn value_tampering_is_rejected(seed in any::<u64>(), pick in any::<prop::sample::Index>()) {
        let (cores, cert) = finished_run(24, seed);
        prop_assume!(!cert.votes.is_empty());
        let idx = pick.index(cert.votes.len());
        let mut data = (*cert).clone();
        let mut v = data.votes.get(idx);
        v.value = (v.value + 1) % cores[0].params.m;
        data.votes.set(idx, v);
        data.k = data.derived_k(cores[0].params.m); // keep the sum check green
        let tampered = Shared::new(data);
        prop_assert!(
            rejections(&cores, &tampered) > 0,
            "no verifier caught a mutated vote value"
        );
    }

    /// Dropping any single vote is caught.
    #[test]
    fn vote_removal_is_rejected(seed in any::<u64>(), pick in any::<prop::sample::Index>()) {
        let (cores, cert) = finished_run(24, seed);
        prop_assume!(!cert.votes.is_empty());
        let idx = pick.index(cert.votes.len());
        let mut data = (*cert).clone();
        data.votes.remove(idx);
        data.k = data.derived_k(cores[0].params.m);
        let tampered = Shared::new(data);
        prop_assert!(rejections(&cores, &tampered) > 0, "vote removal not caught");
    }

    /// Injecting a fabricated vote from a random agent is caught.
    #[test]
    fn vote_injection_is_rejected(
        seed in any::<u64>(),
        voter in 0u32..24,
        value in any::<u64>(),
    ) {
        let (cores, cert) = finished_run(24, seed);
        let m = cores[0].params.m;
        let mut data = (*cert).clone();
        data.votes.push(VoteRec {
            voter,
            round: 0,
            value: value % m,
        });
        data.votes.sort_canonical();
        data.votes.dedup();
        data.k = data.derived_k(m);
        let tampered = Shared::new(data);
        // If dedup removed the injection (it collided with a real vote)
        // the cert is genuine again; otherwise it must be rejected.
        if *tampered != *cert {
            prop_assert!(rejections(&cores, &tampered) > 0, "vote injection not caught");
        }
    }

    /// Lying about k (without touching W) is caught by everyone.
    #[test]
    fn k_lies_are_rejected_by_all(seed in any::<u64>(), delta in 1u64..1000) {
        let (cores, cert) = finished_run(24, seed);
        let m = cores[0].params.m;
        let mut data = (*cert).clone();
        data.k = (data.k + delta) % m;
        let tampered = Shared::new(data);
        prop_assert_eq!(
            rejections(&cores, &tampered),
            cores.len(),
            "a bad sum must fail at every verifier"
        );
    }

    /// Swapping the color (keeping everything else) is NOT detectable by
    /// the W-checks alone… but it changes the certificate, so Coherence
    /// would catch a split; verification-wise the cert still passes. This
    /// documents the division of labor between phases.
    #[test]
    fn color_swap_passes_verification_but_not_equality(seed in any::<u64>()) {
        let (cores, cert) = finished_run(24, seed);
        let mut data = (*cert).clone();
        data.color = data.color.wrapping_add(1);
        let recolored = Shared::new(data);
        prop_assert_ne!(&recolored, &cert);
        // Verification alone accepts it (the ledger checks only bind W):
        prop_assert_eq!(rejections(&cores, &recolored), 0);
        // …which is exactly why the Coherence phase exists: an attacker
        // must show the SAME certificate to everyone, and the honest
        // winner's own copy differs ⇒ mismatch ⇒ fail.
    }
}

#[test]
fn verify_failure_kinds_are_accurately_reported() {
    let (cores, cert) = finished_run(24, 5);
    let m = cores[0].params.m;
    // Bad sum.
    let mut bad_sum = (*cert).clone();
    bad_sum.k = (bad_sum.k + 1) % m;
    let mut c = cores[0].clone();
    c.min_cert = Some(Shared::new(bad_sum));
    c.finalize_honest();
    assert_eq!(
        c.verify_failure,
        Some(rfc_core::VerifyFailure::BadSum),
        "k-lie must be classified as BadSum"
    );
}

#[test]
fn every_vote_in_winning_cert_was_declared() {
    // Cross-check the winning certificate against the global truth: all
    // votes in W_min match the voters' actual intention lists.
    let (cores, cert) = finished_run(32, 9);
    for v in cert.votes.iter() {
        let voter_core = &cores[v.voter as usize];
        let intent = voter_core.intents[v.round as usize];
        assert_eq!(intent.value, v.value, "vote value differs from declaration");
        assert_eq!(
            intent.target, cert.owner,
            "vote target differs from declaration"
        );
    }
}

#[test]
fn winning_k_is_minimum_over_active_agents() {
    let (cores, cert) = finished_run(32, 11);
    let min_k = cores
        .iter()
        .filter_map(|c| c.own_cert.as_ref().map(|ce| ce.k))
        .min()
        .unwrap();
    assert_eq!(cert.k, min_k, "Find-Min must deliver the global minimum");
}

#[test]
fn verification_uses_queries_not_trust() {
    // A verifier with an empty ledger accepts anything sum-consistent —
    // the security is collective (union of ledgers), not individual.
    let params = Params::new(16, 2.0);
    let mut lone = ProtocolCore::new(
        0,
        params,
        params.sync_schedule(),
        0,
        DetRng::seeded(1, 0),
    );
    let fake = Shared::new(CertData::build(3, 1, vec![], params.m));
    lone.min_cert = Some(fake);
    lone.finalize_honest();
    assert_eq!(lone.decision(), Some(1), "no evidence ⇒ no rejection");
}
