//! Phase-machine integration tests: the protocol's behaviour at phase
//! boundaries, under both schedules, and with ablation flags — driven
//! through the real network engine rather than isolated cores.

use gossip_net::rng::DetRng;
use gossip_net::topology::Topology;
use rfc_core::engine::{ConsensusAgent, HonestAgent, ProtocolCore};
use rfc_core::prelude::*;
use rfc_core::runner::{build_network, collect_report, drive_network};
use rfc_core::Params;

fn honest_factory(
    id: u32,
    params: Params,
    color: u32,
    rng: DetRng,
    topo: &Topology,
) -> Box<dyn ConsensusAgent> {
    let core = ProtocolCore::new_on(topo, id, params, params.sync_schedule(), color, rng);
    Box::new(HonestAgent::new(core))
}

#[test]
fn commitment_phase_fills_ledgers() {
    let cfg = RunConfig::builder(24).gamma(3.0).build();
    let mut net = build_network(&cfg, 7, &mut honest_factory);
    let q = cfg.params().q;
    net.run(q); // commitment only
    // Each agent issued q pulls; ledgers hold up to q distinct entries
    // (duplicate targets collapse) and no agent is marked faulty (all
    // active and honest).
    for id in 0..24u32 {
        let core = net.agent(id).core();
        assert!(!core.ledger.is_empty(), "agent {id} learned nothing");
        assert!(core.ledger.len() <= q);
        for entry in core.ledger.entries() {
            assert!(
                !matches!(entry.decl, rfc_core::Declaration::Faulty),
                "honest agent marked faulty"
            );
        }
        // No votes yet.
        assert!(core.votes.is_empty());
        assert!(core.own_cert.is_none());
    }
}

#[test]
fn voting_phase_distributes_all_declared_votes() {
    let n = 24;
    let cfg = RunConfig::builder(n).gamma(3.0).build();
    let mut net = build_network(&cfg, 8, &mut honest_factory);
    let q = cfg.params().q;
    net.run(2 * q); // commitment + voting
    // Conservation: every declared vote was delivered exactly once.
    let total_received: usize = (0..n as u32)
        .map(|id| net.agent(id).core().votes.len())
        .sum();
    assert_eq!(total_received, n * q, "votes are conserved on K_n");
    // Each agent exhausted its intention list.
    for id in 0..n as u32 {
        assert_eq!(net.agent(id).core().vote_idx, q);
    }
}

#[test]
fn find_min_converges_before_coherence() {
    let n = 32;
    let cfg = RunConfig::builder(n).gamma(3.0).build();
    let mut net = build_network(&cfg, 9, &mut honest_factory);
    let q = cfg.params().q;
    net.run(3 * q); // through find-min
    let first = net.agent(0).core().min_cert.clone().unwrap();
    for id in 1..n as u32 {
        assert_eq!(
            net.agent(id).core().min_cert.as_ref(),
            Some(&first),
            "agent {id} disagrees after find-min"
        );
    }
    // And the minimum is genuine.
    let min_k = (0..n as u32)
        .map(|id| net.agent(id).core().own_cert.as_ref().unwrap().k)
        .min()
        .unwrap();
    assert_eq!(first.k, min_k);
}

#[test]
fn coherence_passes_on_converged_network() {
    let n = 24;
    let cfg = RunConfig::builder(n).gamma(3.0).build();
    let mut net = build_network(&cfg, 10, &mut honest_factory);
    drive_network(&mut net, &cfg);
    for id in 0..n as u32 {
        assert!(!net.agent(id).core().failed, "agent {id} failed unexpectedly");
        assert!(net.agent(id).core().decided.is_some());
    }
}

#[test]
fn skip_coherence_ablation_runs_three_phases() {
    let cfg = RunConfig::builder(24).gamma(3.0).skip_coherence(true).build();
    let mut net = build_network(&cfg, 11, &mut honest_factory);
    drive_network(&mut net, &cfg);
    let q = cfg.params().q;
    assert_eq!(net.round(), 3 * q, "coherence rounds must not execute");
    let report = collect_report(&net, &cfg);
    // Honest runs still succeed without coherence (it defends against
    // adversaries/collisions, not against honest randomness).
    assert!(report.outcome.is_consensus());
}

#[test]
fn async_and_sync_schedules_produce_same_decision_structure() {
    // Not the same outcome (different randomness), but the same shape:
    // all-decided-same-color.
    let cfg = RunConfig::builder(20).gamma(3.0).colors(vec![10, 10]).build();
    let sync = run_protocol(&cfg, 3);
    let asyn = rfc_core::asynchronous::run_protocol_async(&cfg, 3, 2);
    for report in [&sync, &asyn] {
        if let Outcome::Consensus(c) = report.outcome {
            for d in &report.decisions {
                assert_eq!(*d, rfc_core::Decision::Decided(c));
            }
        }
    }
    assert!(sync.outcome.is_consensus());
    assert!(asyn.outcome.is_consensus());
}

#[test]
fn metrics_phases_partition_all_messages() {
    let cfg = RunConfig::builder(32).gamma(2.0).build();
    let report = run_protocol(&cfg, 13);
    let phase_sum: u64 = report.metrics.phases.iter().map(|(_, t)| t.messages).sum();
    assert_eq!(
        phase_sum, report.metrics.messages_sent,
        "every message must be attributed to a phase"
    );
    let bits_sum: u64 = report.metrics.phases.iter().map(|(_, t)| t.bits).sum();
    assert_eq!(bits_sum, report.metrics.bits_sent);
}

#[test]
fn voting_receipt_counts_match_audit() {
    let cfg = RunConfig::builder(40).gamma(3.0).record_ops(true).build();
    let report = run_protocol(&cfg, 17);
    let audit = report.audit.unwrap();
    let q = cfg.params().q as f64;
    assert!(audit.votes_mean > 0.5 * q && audit.votes_mean < 1.5 * q);
    assert!(audit.votes_min >= 1);
    assert!(audit.votes_max as f64 <= 4.0 * q);
}

#[test]
fn leader_election_certificate_owner_is_leader() {
    let cfg = rfc_core::election::election_config(24, 3.0);
    let report = run_protocol(&cfg, 19);
    if let (Outcome::Consensus(c), Some(w)) = (report.outcome, report.winner) {
        assert_eq!(c, w, "in election mode the color IS the id");
    } else {
        panic!("election failed unexpectedly");
    }
}

#[test]
fn tiny_network_edge_case_n2() {
    // The smallest legal network: 2 agents, 2 colors.
    let cfg = RunConfig::builder(2).gamma(2.0).colors(vec![1, 1]).build();
    let mut consensuses = 0;
    for seed in 0..20 {
        let report = run_protocol(&cfg, seed);
        if report.outcome.is_consensus() {
            consensuses += 1;
        }
    }
    // k-collisions are common at m = 8, so some failures are expected;
    // but the machinery must not panic and must often succeed.
    assert!(consensuses >= 10, "n=2 too fragile: {consensuses}/20");
}

#[test]
fn q_override_shortens_the_run() {
    let cfg = RunConfig::builder(64).gamma(3.0).q(5).build();
    let report = run_protocol(&cfg, 23);
    assert_eq!(report.rounds, 20);
    // q = 5 ≪ 3·log2(64) = 18: good executions become unreliable, but
    // the run still terminates cleanly either way.
    assert_eq!(report.decisions.len(), 64);
}

#[test]
fn self_vote_check_toggle_is_respected() {
    let with = RunConfig::builder(32).gamma(3.0).check_self_votes(true).build();
    let without = RunConfig::builder(32).gamma(3.0).check_self_votes(false).build();
    assert!(with.params().check_self_votes);
    assert!(!without.params().check_self_votes);
    // Honest runs succeed under both.
    assert!(run_protocol(&with, 29).outcome.is_consensus());
    assert!(run_protocol(&without, 29).outcome.is_consensus());
}
