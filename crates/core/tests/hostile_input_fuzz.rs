//! Hostile-input fuzzing of the honest agent: arbitrary message
//! sequences, injected at arbitrary rounds from arbitrary senders, must
//! never panic, never violate the state machine's invariants, and never
//! trick an agent into accepting out-of-protocol data.
//!
//! This is the local complement of the adversary crate: the strategies
//! there are *plausible* attackers; this fuzzer is an *implausible* one
//! (arbitrary bytes-on-the-wire shapes), checking total robustness of the
//! message handlers.

use gossip_net::agent::{Agent, RoundCtx};
use gossip_net::rng::DetRng;
use gossip_net::topology::Topology;
use proptest::prelude::*;
use rfc_core::certificate::{CertData, VoteRec};
use rfc_core::engine::{HonestAgent, ProtocolCore};
use rfc_core::msg::{IntentEntry, Msg};
use rfc_core::Params;
use rfc_core::sharing::Shared;

/// Generator for arbitrary protocol messages (including malformed ones).
fn arb_msg() -> impl proptest::strategy::Strategy<Value = Msg> {
    prop_oneof![
        Just(Msg::QIntent),
        Just(Msg::QMinCert),
        (any::<u64>(), any::<u16>()).prop_map(|(value, round)| Msg::Vote { value, round }),
        proptest::collection::vec((any::<u64>(), any::<u32>()), 0..40).prop_map(|entries| {
            Msg::Intents(
                entries
                    .into_iter()
                    .map(|(value, target)| IntentEntry {
                        value,
                        target: target % 64,
                    })
                    .collect::<Vec<_>>()
                    .into(),
            )
        }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec((any::<u32>(), any::<u16>(), any::<u64>()), 0..30)
        )
            .prop_map(|(k, color, owner, votes)| {
                Msg::Cert(Shared::new(CertData {
                    k,
                    votes: votes
                        .into_iter()
                        .map(|(voter, round, value)| VoteRec {
                            voter: voter % 64,
                            round,
                            value,
                        })
                        .collect(),
                    color,
                    owner: owner % 64,
                }))
            }),
    ]
}

fn fresh_agent(seed: u64) -> (HonestAgent, Params) {
    let params = Params::new(32, 2.0);
    let core = ProtocolCore::new(
        3,
        params,
        params.sync_schedule(),
        1,
        DetRng::seeded(seed, 3),
    );
    (HonestAgent::new(core), params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary message storms never panic the agent, and its invariants
    /// hold afterwards: vote values are recorded verbatim only during
    /// Voting; the minimum certificate is always structurally valid; a
    /// failed agent stays failed.
    #[test]
    fn message_storm_never_panics(
        msgs in proptest::collection::vec((arb_msg(), 0u32..32, 0usize..200), 0..120),
        seed in any::<u64>(),
    ) {
        let topo = Topology::complete(32);
        let (mut agent, params) = fresh_agent(seed);
        for (msg, from, round) in msgs {
            let ctx = RoundCtx { round, topology: &topo };
            // Alternate between delivery paths.
            match round % 3 {
                0 => agent.on_push(from, &msg, &ctx),
                1 => { let _ = agent.on_pull(from, &msg, &ctx); }
                _ => agent.on_reply(from, Some(msg), &ctx),
            }
        }
        // Invariants after the storm:
        let core = agent.core();
        if let Some(ce) = &core.min_cert {
            prop_assert!(
                ce.structurally_valid(params.n, params.m, params.q)
                    || ce.owner == core.id,
                "agent adopted a structurally invalid foreign certificate"
            );
        }
        // Votes were only recorded while in the Voting phase window.
        prop_assert!(core.votes.len() <= 120);
    }

    /// Driving act() through all rounds interleaved with hostile input
    /// still terminates with a decision or a clean failure.
    #[test]
    fn full_run_with_interleaved_garbage(
        garbage in proptest::collection::vec((arb_msg(), 0u32..32), 0..60),
        seed in any::<u64>(),
    ) {
        let topo = Topology::complete(32);
        let (mut agent, params) = fresh_agent(seed);
        let total = params.total_rounds();
        let mut g = garbage.into_iter();
        for round in 0..total {
            let ctx = RoundCtx { round, topology: &topo };
            let _ = agent.act(&ctx);
            if let Some((msg, from)) = g.next() {
                agent.on_push(from, &msg, &ctx);
            }
        }
        let ctx = RoundCtx { round: total, topology: &topo };
        agent.finalize(&ctx);
        let core = agent.core();
        prop_assert!(
            core.failed || core.decided.is_some(),
            "agent must end decided or failed"
        );
    }

    /// Pull floods: answering arbitrary queries never mutates the
    /// intention list (the commitment is binding).
    #[test]
    fn pulls_cannot_mutate_commitments(
        queries in proptest::collection::vec((arb_msg(), 0u32..32, 0usize..100), 1..60),
        seed in any::<u64>(),
    ) {
        let topo = Topology::complete(32);
        let (mut agent, _) = fresh_agent(seed);
        let before: Vec<IntentEntry> = agent.core().intents.to_vec();
        for (q, from, round) in queries {
            let ctx = RoundCtx { round, topology: &topo };
            let _ = agent.on_pull(from, &q, &ctx);
        }
        prop_assert_eq!(before, agent.core().intents.to_vec());
    }

    /// Replies carrying wrong message kinds during Commitment mark the
    /// peer faulty rather than corrupting the ledger.
    #[test]
    fn wrong_kind_replies_mark_faulty(
        msg in arb_msg(),
        from in 0u32..32,
        seed in any::<u64>(),
    ) {
        let topo = Topology::complete(32);
        let (mut agent, params) = fresh_agent(seed);
        let ctx = RoundCtx { round: 0, topology: &topo };
        let is_good_intents = match &msg {
            Msg::Intents(list) => {
                list.len() == params.q
                    && list
                        .iter()
                        .all(|e| e.value < params.m && (e.target as usize) < params.n)
            }
            _ => false,
        };
        agent.on_reply(from, Some(msg), &ctx);
        let entry = agent.core().ledger.find(from).expect("entry recorded");
        match (&entry.decl, is_good_intents) {
            (rfc_core::Declaration::Intents(_), true) => {}
            (rfc_core::Declaration::Faulty, false) => {}
            (decl, good) => {
                return Err(TestCaseError::fail(format!(
                    "classification mismatch: good={good}, decl={decl:?}"
                )));
            }
        }
    }
}
