//! The equilibrium test harness: honest arm vs. deviating arm.
//!
//! For a given attack specification, the harness runs paired trials —
//! identical `(config, seed)` with every agent honest, and with the
//! coalition replaced by the strategy's agents — and compares:
//!
//! * the coalition's *color* win rate against its fair share
//!   `N(A, c_C)/|A|` (Theorem 4 / fairness),
//! * the rate at which the Winner is a coalition member against
//!   `|C|/|A|` (Claim 4),
//! * the per-member expected utility under the paper's payoff scheme
//!   (Definition 1's inequality: some member must not gain).
//!
//! Pairing trials by seed makes the comparison a within-pair contrast, so
//! far fewer trials are needed to resolve utility deltas.
//!
//! Dynamic adversity composes: a [`RunConfig`] carrying a
//! `ScenarioScript` or `LossSchedule` (see `rfc_core::ScenarioScript`)
//! flows through [`run_equilibrium_with`] unchanged, so both arms of
//! every pair face the *same* scripted churn/partition/loss timeline —
//! the deviation's profitability is measured under identical dynamic
//! conditions (pinned by `equilibrium_composes_with_dynamic_scenarios`).

use crate::coalition::{new_coalition, select_members, Coalition, CoalitionSelection};
use crate::strategies::Strategy;
use gossip_net::ids::{AgentId, ColorId};
use gossip_net::rng::derive_seed;
use rfc_core::agent_plane::AgentSlot;
use rfc_core::engine::ProtocolCore;
use rfc_core::outcome::{utility, Outcome};
use rfc_core::runner::{RunConfig, RunReport, TrialArena};
use rfc_core::Params;
use rfc_stats::ci::{wilson95, Interval};

/// The coalition's color in harness-generated configurations.
pub const COALITION_COLOR: ColorId = 1;

/// Specification of one equilibrium experiment.
#[derive(Debug)]
pub struct AttackSpec<'a> {
    /// The deviation strategy under test.
    pub strategy: &'a dyn Strategy,
    /// Coalition size `t`.
    pub t: usize,
    /// How members are chosen from `[n]`.
    pub selection: CoalitionSelection,
    /// Failure penalty `χ ≥ 0` in the utility model.
    pub chi: f64,
}

/// Aggregated statistics for one arm (honest or deviating).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArmStats {
    /// Trials executed.
    pub trials: u64,
    /// Runs reaching consensus.
    pub consensus: u64,
    /// Runs failing (`⊥`).
    pub fails: u64,
    /// Runs won by the coalition color.
    pub coalition_color_wins: u64,
    /// Runs whose Winner (certificate owner) is a coalition member.
    pub winner_in_coalition: u64,
    /// Sum of per-trial member utility (members share the coalition
    /// color, so utilities coincide).
    utility_sum: f64,
}

impl ArmStats {
    /// Fold one run into the arm (utility uses the coalition color).
    pub fn record(&mut self, report: &RunReport, coalition: &[AgentId], chi: f64) {
        self.trials += 1;
        match report.outcome {
            Outcome::Consensus(c) => {
                self.consensus += 1;
                if c == COALITION_COLOR {
                    self.coalition_color_wins += 1;
                }
                if let Some(w) = report.winner {
                    if coalition.binary_search(&w).is_ok() {
                        self.winner_in_coalition += 1;
                    }
                }
            }
            Outcome::Fail => self.fails += 1,
        }
        self.utility_sum += utility(report.outcome, COALITION_COLOR, chi);
    }

    /// Mean utility of a coalition member.
    pub fn mean_utility(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.utility_sum / self.trials as f64
        }
    }

    /// Wilson 95% CI on the coalition-color win rate.
    pub fn color_win_ci(&self) -> Interval {
        wilson95(self.coalition_color_wins, self.trials.max(1))
    }

    /// Wilson 95% CI on the winner-in-coalition rate.
    pub fn winner_ci(&self) -> Interval {
        wilson95(self.winner_in_coalition, self.trials.max(1))
    }

    /// Raw utility sum (checkpoint support: persist the exact f64 bits
    /// and feed them back through [`ArmStats::restore`]).
    pub fn utility_sum(&self) -> f64 {
        self.utility_sum
    }

    /// Rebuild an arm from persisted fields (checkpoint support). With
    /// `utility_sum` restored bit-exactly, continuing to [`record`]
    /// trials into the result reproduces a straight-through run's float
    /// addition order — merging two separately-built arms would not.
    ///
    /// [`record`]: ArmStats::record
    pub fn restore(
        trials: u64,
        consensus: u64,
        fails: u64,
        coalition_color_wins: u64,
        winner_in_coalition: u64,
        utility_sum: f64,
    ) -> Self {
        Self {
            trials,
            consensus,
            fails,
            coalition_color_wins,
            winner_in_coalition,
            utility_sum,
        }
    }

    /// Merge another arm's tallies (parallel aggregation).
    pub fn merge(&mut self, other: &ArmStats) {
        self.trials += other.trials;
        self.consensus += other.consensus;
        self.fails += other.fails;
        self.coalition_color_wins += other.coalition_color_wins;
        self.winner_in_coalition += other.winner_in_coalition;
        self.utility_sum += other.utility_sum;
    }

    /// Empirical failure rate.
    pub fn fail_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.fails as f64 / self.trials as f64
        }
    }
}

/// Outcome of one full equilibrium experiment.
#[derive(Debug, Clone)]
pub struct EquilibriumReport {
    /// Strategy name.
    pub strategy: &'static str,
    /// Network size.
    pub n: usize,
    /// Coalition size.
    pub t: usize,
    /// Trials per arm.
    pub trials: u64,
    /// Fair benchmark `t/n` (= `|C|/|A|` with no faults).
    pub fair_share: f64,
    /// All-honest control arm.
    pub honest: ArmStats,
    /// Deviating arm.
    pub deviating: ArmStats,
}

impl EquilibriumReport {
    /// Per-member expected-utility gain from deviating (the quantity
    /// Theorem 7 proves cannot be positive for every member; with a
    /// shared coalition color it is one number).
    pub fn utility_delta(&self) -> f64 {
        self.deviating.mean_utility() - self.honest.mean_utility()
    }

    /// Does the measurement refute profitability? True when the deviating
    /// win rate is **not** significantly above the honest one (CI
    /// overlap test at 95%).
    pub fn no_significant_gain(&self) -> bool {
        self.deviating.color_win_ci().lo <= self.honest.color_win_ci().hi
    }
}

/// Build the explicit color vector: coalition members support
/// [`COALITION_COLOR`], everyone else color 0.
pub fn coalition_colors(n: usize, members: &[AgentId]) -> Vec<ColorId> {
    let mut colors = vec![0 as ColorId; n];
    for &m in members {
        colors[m as usize] = COALITION_COLOR;
    }
    colors
}

/// Run a single deviating trial: coalition members run the strategy,
/// everyone else is honest. Builds a fresh network; Monte-Carlo loops
/// should prefer [`run_attack_trial_in`] with a per-worker arena.
pub fn run_attack_trial(
    cfg: &RunConfig,
    strategy: &dyn Strategy,
    members: &[AgentId],
    seed: u64,
) -> RunReport {
    run_attack_trial_in(&mut TrialArena::new(), cfg, strategy, members, seed)
}

/// [`run_attack_trial`] into a reusable [`TrialArena`]: the deviating
/// agents land in their dedicated [`AgentSlot`] variants, so attack
/// trials ride the same jump-table dispatch and recycled allocations as
/// honest ones. Same `(cfg, seed)` ⇒ bit-identical report either way.
pub fn run_attack_trial_in(
    arena: &mut TrialArena,
    cfg: &RunConfig,
    strategy: &dyn Strategy,
    members: &[AgentId],
    seed: u64,
) -> RunReport {
    // Coalition agents share mutable intel, so their handler
    // interleaving is observable — the sharded engine's determinism
    // argument (handlers touch only their own agent) does not cover
    // them. Attack trials therefore always run on the sequential
    // engine, whatever the incoming config says; this also keeps the
    // paired honest arm comparable (same engine, same loss discipline).
    let cfg = &RunConfig {
        threads: 1,
        rng_discipline: gossip_net::rng::RngDiscipline::Sequential,
        ..cfg.clone()
    };
    let member_set: Vec<AgentId> = members.to_vec();
    let coalition: Coalition = new_coalition(member_set.clone(), COALITION_COLOR);
    let mut factory = |id: AgentId,
                       params: Params,
                       color: ColorId,
                       rng,
                       topo: &gossip_net::topology::Topology| {
        let core = ProtocolCore::new_on(topo, id, params, params.sync_schedule(), color, rng);
        if member_set.binary_search(&id).is_ok() {
            strategy.build(core, Coalition::clone(&coalition))
        } else {
            AgentSlot::honest(core)
        }
    };
    arena.run_with(cfg, seed, &mut factory)
}

/// Run the full paired experiment: `trials` seeds through both arms.
pub fn run_equilibrium(
    n: usize,
    gamma: f64,
    spec: &AttackSpec,
    trials: u64,
    master_seed: u64,
) -> EquilibriumReport {
    run_equilibrium_with(
        RunConfig::builder(n).gamma(gamma),
        spec,
        trials,
        master_seed,
    )
}

/// Like [`run_equilibrium`] but over a caller-prepared config builder
/// (to add faults, ablations, …). The color spec is overwritten with the
/// coalition assignment.
pub fn run_equilibrium_with(
    builder: rfc_core::runner::RunConfigBuilder,
    spec: &AttackSpec,
    trials: u64,
    master_seed: u64,
) -> EquilibriumReport {
    let (cfg, members) = equilibrium_config(builder, spec, master_seed);
    let mut honest = ArmStats::default();
    let mut deviating = ArmStats::default();
    run_equilibrium_span(
        &cfg,
        spec,
        &members,
        0..trials,
        master_seed,
        &mut honest,
        &mut deviating,
    );
    EquilibriumReport {
        strategy: spec.strategy.name(),
        n: cfg.n,
        t: spec.t,
        trials,
        fair_share: spec.t as f64 / cfg.n as f64,
        honest,
        deviating,
    }
}

/// Resolve the deterministic equilibrium setup: coalition membership
/// (drawn from `master_seed`), the explicit color assignment, and the
/// sequential-engine pinning both arms run under. Pure function of its
/// inputs, so a resumed sweep rebuilds the identical configuration.
pub fn equilibrium_config(
    builder: rfc_core::runner::RunConfigBuilder,
    spec: &AttackSpec,
    master_seed: u64,
) -> (RunConfig, Vec<AgentId>) {
    let cfg_proto = builder.build();
    let n = cfg_proto.n;
    let members = select_members(n, spec.t, spec.selection, master_seed);
    let colors = coalition_colors(n, &members);
    let mut cfg = cfg_proto;
    cfg.colors = rfc_core::runner::ColorSpec::Explicit(colors);
    // Both arms on the sequential engine (the attack arm is forced
    // there anyway — see `run_attack_trial_in`): the paired comparison
    // needs one loss discipline across honest and deviating runs.
    cfg.threads = 1;
    cfg.rng_discipline = gossip_net::rng::RngDiscipline::Sequential;
    (cfg, members)
}

/// Run a **span** of paired trials, accumulating in place — the
/// trial-index resume point for equilibrium sweeps.
///
/// Trial `i` (for `i` in `trials`) derives its seed from `master_seed`
/// exactly as the full run does, and `record`s into the provided arms
/// *in place*, so splitting `0..T` into `0..k` + `k..T` across two calls
/// (persisting the arms in between — see [`ArmStats::restore`]) is
/// bit-identical to one `0..T` call, float addition order included.
/// `cfg`/`members` must come from [`equilibrium_config`] with the same
/// `master_seed`.
pub fn run_equilibrium_span(
    cfg: &RunConfig,
    spec: &AttackSpec,
    members: &[AgentId],
    trials: std::ops::Range<u64>,
    master_seed: u64,
    honest: &mut ArmStats,
    deviating: &mut ArmStats,
) {
    // One arena serves both arms of every paired trial: honest and
    // deviating runs alternate through the same recycled network.
    let mut arena = TrialArena::new();
    for i in trials {
        let seed = derive_seed(master_seed, i);
        let h = arena.run_protocol(cfg, seed);
        honest.record(&h, members, spec.chi);
        let d = run_attack_trial_in(&mut arena, cfg, spec.strategy, members, seed);
        deviating.record(&d, members, spec.chi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::forge_cert::ForgeCert;
    use crate::strategies::vote_rig::VoteRig;

    #[test]
    fn attack_trials_are_pinned_to_the_sequential_engine() {
        // Coalition agents share mutable intel, so sharded execution
        // would make their runs scheduler-dependent. The harness must
        // ignore any sharded spelling in the incoming config: same
        // (cfg, seed) ⇒ the exact sequential report, however the caller
        // set threads/discipline.
        let members = [0, 1, 2, 3];
        let colors = coalition_colors(16, &members);
        let base = RunConfig::builder(16)
            .gamma(3.0)
            .explicit_colors(colors)
            .message_loss(0.1);
        let key = |r: &RunReport| {
            format!("{:?}|{:?}|{:?}|{:?}", r.outcome, r.winner, r.decisions, r.metrics)
        };
        let mut arena = TrialArena::new();
        let sequential = key(&run_attack_trial_in(
            &mut arena,
            &base.clone().build(),
            &ForgeCert::zero_k(),
            &members,
            9,
        ));
        for sharded_cfg in [base.clone().sharded(4).build(), base.clone().threads(0).build()] {
            let got = key(&run_attack_trial_in(
                &mut arena,
                &sharded_cfg,
                &ForgeCert::zero_k(),
                &members,
                9,
            ));
            assert_eq!(got, sequential, "harness must force the sequential engine");
        }
    }

    #[test]
    fn honest_arm_wins_fair_share() {
        let spec = AttackSpec {
            strategy: &VoteRig,
            t: 8,
            selection: CoalitionSelection::Random,
            chi: 1.0,
        };
        let rep = run_equilibrium(32, 3.0, &spec, 60, 0xFA1);
        // Fair share = 8/32 = 0.25; the honest arm must be near it.
        assert!(
            rep.honest.color_win_ci().contains(rep.fair_share),
            "honest win rate CI {:?} should contain {}",
            rep.honest.color_win_ci(),
            rep.fair_share
        );
        assert_eq!(rep.honest.fails, 0, "honest runs never fail");
    }

    #[test]
    fn vote_rig_is_neutral() {
        let spec = AttackSpec {
            strategy: &VoteRig,
            t: 8,
            selection: CoalitionSelection::Random,
            chi: 1.0,
        };
        let rep = run_equilibrium(32, 3.0, &spec, 60, 0xFA2);
        assert!(rep.no_significant_gain());
        assert_eq!(rep.deviating.fails, 0, "vote-rig cannot cause failure");
    }

    #[test]
    fn forge_attacks_fail_not_win() {
        for strategy in [
            ForgeCert::zero_k(),
            ForgeCert::tuned_vote(),
            ForgeCert::drop_votes(),
        ] {
            let spec = AttackSpec {
                strategy: &strategy,
                t: 4,
                selection: CoalitionSelection::Random,
                chi: 1.0,
            };
            let rep = run_equilibrium(32, 3.0, &spec, 30, 0xFA3);
            assert!(
                rep.no_significant_gain(),
                "{}: gained significantly",
                strategy.name()
            );
            assert!(
                rep.deviating.fail_rate() > 0.5,
                "{}: forgery should usually fail the run (rate {})",
                strategy.name(),
                rep.deviating.fail_rate()
            );
            assert!(
                rep.utility_delta() < 0.0,
                "{}: deviation must cost utility at χ=1",
                strategy.name()
            );
        }
    }

    #[test]
    fn equilibrium_composes_with_dynamic_scenarios() {
        // Phase-boundary churn of non-coalition agents: the paired
        // harness must thread the script through both arms. Crashing at
        // a phase boundary is tolerated quiescence (E15a), so the honest
        // arm keeps its fair-share behavior over the survivor set.
        let n = 32;
        let q = rfc_core::RunConfig::builder(n).gamma(3.0).build().params().q;
        let script = rfc_core::ScenarioScript::new().crash(2 * q, vec![28, 29, 30, 31]);
        let spec = AttackSpec {
            strategy: &VoteRig,
            t: 8,
            selection: CoalitionSelection::LowIds,
            chi: 1.0,
        };
        let builder = rfc_core::RunConfig::builder(n).gamma(3.0).scenario(script);
        let rep = run_equilibrium_with(builder, &spec, 40, 0xD1A);
        assert_eq!(rep.honest.trials, 40);
        assert!(
            rep.honest.consensus >= 30,
            "boundary churn must leave the honest arm mostly succeeding: {:?}",
            rep.honest
        );
        assert!(rep.no_significant_gain(), "vote-rig must stay unprofitable under churn");
    }

    #[test]
    fn coalition_colors_mark_members() {
        let colors = coalition_colors(6, &[1, 4]);
        assert_eq!(colors, vec![0, 1, 0, 0, 1, 0]);
    }
}
