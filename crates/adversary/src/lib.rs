#![warn(missing_docs)]
//! # adversary — rational coalitions and the deviation-strategy suite
//!
//! Theorem 7 of the paper claims protocol `P` is a *whp t-strong
//! equilibrium* for any coalition of size `t = o(n/log n)`: for every
//! deviating strategy profile, at least one coalition member does not
//! improve its expected utility. This crate supplies the machinery to
//! test that claim empirically:
//!
//! * [`coalition`] — shared coalition state (the blackboard through which
//!   members coordinate during a run) and member-selection policies;
//! * [`strategies`] — ten concrete attacks covering every surface the
//!   proof's case analysis identifies (certificate forgery ×3, vote
//!   rigging, adaptive spy-and-tune, play-dead ×2, equivocation, minimum
//!   suppression, spite-abort);
//! * [`harness`] — paired honest-vs-deviating Monte-Carlo comparison with
//!   Wilson intervals on win rates and the paper's utility model.
//!
//! The coalition blackboard and the strategy suite are *defined* in
//! `rfc-core` (so the monomorphic `AgentSlot` agent plane can name every
//! strategy agent as an enum variant) and re-exported here unchanged;
//! this crate owns the measurement harness. Attack trials run on the
//! same jump-table dispatch and reusable [`rfc_core::TrialArena`]s as
//! honest runs — deviating agents are enum variants, not boxes.
//!
//! The headline measurements (experiment E7):
//!
//! * no strategy pushes the coalition's color win rate significantly
//!   above its fair share `N(A, c_C)/|A|`;
//! * forging/equivocation/suppression strategies mostly convert would-be
//!   losses into protocol failures (utility `−χ`), i.e. strictly
//!   *negative* deltas for `χ > 0`;
//! * the undetectable strategies (vote-rig, spy-tune) are measurably
//!   neutral — exactly the deferred-decision argument of Claim 2.

pub use rfc_core::coalition;
pub use rfc_core::strategies;

pub mod harness;

pub use coalition::{new_coalition, select_members, Coalition, CoalitionSelection};
pub use harness::{
    coalition_colors, equilibrium_config, run_attack_trial, run_attack_trial_in,
    run_equilibrium, run_equilibrium_span, run_equilibrium_with, ArmStats,
    AttackSpec, EquilibriumReport, COALITION_COLOR,
};
pub use strategies::{standard_attacks, Strategy};

/// Convenience re-exports for examples and the experiment harness.
pub mod prelude {
    pub use crate::coalition::{select_members, CoalitionSelection};
    pub use crate::harness::{
        run_attack_trial, run_attack_trial_in, run_equilibrium, ArmStats, AttackSpec,
        EquilibriumReport,
        COALITION_COLOR,
    };
    pub use crate::strategies::{standard_attacks, Strategy};
}
