//! Behavioral tests for each deviation strategy: not just "does it fail
//! to gain" (the harness tests cover that) but *how* each attack is
//! caught — which verification rule fires, at which agents, and what the
//! failure diagnostics look like.

use adversary::coalition::{select_members, CoalitionSelection};
use adversary::harness::{coalition_colors, run_attack_trial, COALITION_COLOR};
use adversary::strategies::{
    equivocate::Equivocate, forge_cert::ForgeCert, play_dead::PlayDead,
    suppress_min::SuppressMin, vote_rig::VoteRig,
};
use adversary::Strategy;
use rfc_core::ledger::ConsistencyError;
use rfc_core::runner::{ColorSpec, RunConfig, RunReport};
use rfc_core::{Outcome, VerifyFailure};

const N: usize = 48;

fn run_with(strategy: &dyn Strategy, t: usize, seed: u64) -> (RunReport, Vec<u32>) {
    let members = select_members(N, t, CoalitionSelection::Random, seed);
    let mut cfg = RunConfig::builder(N).gamma(3.0).build();
    cfg.colors = ColorSpec::Explicit(coalition_colors(N, &members));
    (run_attack_trial(&cfg, strategy, &members, seed), members)
}

/// Collect all failure kinds over several seeds.
fn failure_kinds(strategy: &dyn Strategy, t: usize, seeds: u64) -> Vec<VerifyFailure> {
    let mut kinds = Vec::new();
    for seed in 0..seeds {
        let (report, _) = run_with(strategy, t, seed);
        for (k, _) in report.failure_histogram() {
            if !kinds.contains(&k) {
                kinds.push(k);
            }
        }
    }
    kinds
}

#[test]
fn forge_zero_k_is_caught_by_the_sum_check() {
    let kinds = failure_kinds(&ForgeCert::zero_k(), 2, 5);
    assert!(
        kinds.contains(&VerifyFailure::BadSum),
        "zero-k must trip BadSum, saw {kinds:?}"
    );
}

#[test]
fn forge_tuned_vote_is_caught_by_ledger_checks() {
    // The balancing vote is attributed to a fellow member whose honest
    // declaration disagrees ⇒ VoteMismatch at verifiers that pulled it.
    let kinds = failure_kinds(&ForgeCert::tuned_vote(), 2, 5);
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, VerifyFailure::Inconsistent(ConsistencyError::VoteMismatch { .. }))
                || matches!(k, VerifyFailure::SelfVoteMismatch)),
        "tuned-vote must trip a ledger/self mismatch, saw {kinds:?}"
    );
    assert!(
        !kinds.contains(&VerifyFailure::BadSum),
        "tuned-vote is built to pass the sum check, saw {kinds:?}"
    );
}

#[test]
fn forge_drop_votes_is_caught_as_missing_votes() {
    let kinds = failure_kinds(&ForgeCert::drop_votes(), 2, 5);
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, VerifyFailure::Inconsistent(_))
                || matches!(k, VerifyFailure::SelfVoteMismatch)),
        "drop-votes must trip consistency checks, saw {kinds:?}"
    );
}

#[test]
fn play_dead_voting_is_caught_as_vote_from_faulty() {
    // Needs enough "dead" voters that one of their votes reaches the
    // winner: use a sizeable coalition and several seeds.
    let mut saw_ghost = false;
    for seed in 0..20 {
        let (report, _) = run_with(&PlayDead::voting(), 10, seed);
        if report
            .failure_histogram()
            .iter()
            .any(|(k, _)| {
                matches!(
                    k,
                    VerifyFailure::Inconsistent(ConsistencyError::VoteFromFaulty { .. })
                )
            })
        {
            saw_ghost = true;
            break;
        }
    }
    assert!(saw_ghost, "ghost votes from 'dead' agents never detected");
}

#[test]
fn equivocation_failures_are_ledger_mismatches() {
    let kinds = failure_kinds(&Equivocate, 6, 8);
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, VerifyFailure::Inconsistent(_))),
        "equivocation must surface as ledger inconsistency, saw {kinds:?}"
    );
}

#[test]
fn suppress_min_failures_are_coherence_mismatches() {
    let kinds = failure_kinds(&SuppressMin, 6, 8);
    assert!(
        kinds.contains(&VerifyFailure::FailedEarlier),
        "suppression splits the network ⇒ Coherence mismatch, saw {kinds:?}"
    );
}

#[test]
fn vote_rig_produces_no_failures_at_all() {
    for seed in 0..10 {
        let (report, _) = run_with(&VoteRig, 6, seed);
        assert!(
            report.failure_histogram().is_empty(),
            "vote-rig is undetectable; seed {seed} produced {:?}",
            report.failure_histogram()
        );
        assert!(report.outcome.is_consensus());
    }
}

#[test]
fn vote_rig_winner_certificate_contains_rigged_votes() {
    // When a coalition member's target (the leader) wins, the winning
    // certificate legitimately contains the rigged votes — they were
    // declared and delivered, so fairness is preserved without detection.
    let mut observed_leader_win = false;
    for seed in 0..200 {
        let (report, members) = run_with(&VoteRig, 6, seed);
        if let Outcome::Consensus(c) = report.outcome {
            if c == COALITION_COLOR {
                observed_leader_win = true;
                assert!(
                    members.contains(&report.winner.unwrap()),
                    "coalition color won via a non-member?!"
                );
                break;
            }
        }
    }
    assert!(
        observed_leader_win,
        "with t=6/48 the coalition should win some run out of 200"
    );
}

#[test]
fn failed_runs_have_no_winner() {
    for seed in 0..5 {
        let (report, _) = run_with(&ForgeCert::zero_k(), 2, seed);
        if report.outcome == Outcome::Fail {
            assert_eq!(report.winner, None, "failed runs must not name a winner");
        }
    }
}

#[test]
fn deviator_roles_are_visible_in_reports() {
    // Coalition members appear with Decided(coalition color) even in
    // failing runs (they "decide" their own color); honest failures are
    // recorded as Failed.
    let (report, members) = run_with(&ForgeCert::drop_votes(), 3, 1);
    assert_eq!(report.outcome, Outcome::Fail);
    let honest_failed = report
        .decisions
        .iter()
        .enumerate()
        .filter(|(id, d)| {
            !members.contains(&(*id as u32))
                && matches!(d, rfc_core::Decision::Failed)
        })
        .count();
    assert!(honest_failed > 0, "some honest agent must have failed");
}
