//! Fast workspace smoke test: one full protocol run at small `n` reaches
//! consensus on a valid color, and `run_protocol` is a pure function of
//! `(config, seed)` — the reproducibility contract every experiment and
//! the parallel Monte-Carlo harness rely on.

use rational_fair_consensus::prelude::*;

fn small_config() -> RunConfig {
    RunConfig::builder(64).colors(vec![32, 16, 16]).gamma(3.0).build()
}

#[test]
fn small_run_reaches_valid_consensus() {
    let cfg = small_config();
    let report = run_protocol(&cfg, 0xC0FFEE);
    match report.outcome {
        Outcome::Consensus(c) => {
            // Validity: the winner must be a color some active agent
            // actually started with.
            assert!(
                report.initial_colors.contains(&c),
                "winner {c} not among initial colors"
            );
        }
        Outcome::Fail => panic!("protocol failed on the smoke seed"),
    }
    assert!(report.rounds > 0, "no communication rounds executed");
    assert_eq!(report.n_active, 64);
}

#[test]
fn run_protocol_is_reproducible_for_fixed_seed() {
    let cfg = small_config();
    let a = run_protocol(&cfg, 7);
    let b = run_protocol(&cfg, 7);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.initial_colors, b.initial_colors);
    assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
    assert_eq!(a.metrics.bits_sent, b.metrics.bits_sent);
}

#[test]
fn distinct_seeds_can_elect_distinct_winners() {
    // Fairness in the small: over a handful of seeds the 32/16/16 split
    // should not always crown the same color. This is a smoke check, not
    // the statistical test (experiment E4 / tests/protocol_end_to_end.rs
    // do that properly).
    let cfg = small_config();
    let winners: Vec<_> = (0..12u64)
        .filter_map(|s| run_protocol(&cfg, s).outcome.winning_color())
        .collect();
    assert!(!winners.is_empty());
    assert!(
        winners.iter().any(|&w| w != winners[0]),
        "12 seeds all elected color {} — fairness smoke check failed",
        winners[0]
    );
}
