//! Property-based tests (proptest) on the protocol's core invariants:
//! randomized configurations, certificates, ledgers, and tampering.

use proptest::prelude::*;
use rational_fair_consensus::gossip_net::rng::DetRng;
use rational_fair_consensus::prelude::*;
use rational_fair_consensus::rfc_core::certificate::{sum_votes_mod, CertData, VoteRec};
use rational_fair_consensus::rfc_core::ledger::Ledger;
use rational_fair_consensus::rfc_core::msg::{IntentEntry, IntentList};
use rational_fair_consensus::rfc_core::{Decision, Params};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (n, γ, split, seed): the protocol terminates with all agents
    /// decided-or-failed, and agreement holds whenever consensus does.
    #[test]
    fn protocol_terminates_and_agreement_holds(
        n in 8usize..72,
        gamma in 1.5f64..4.0,
        frac in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let c0 = ((n as f64 * frac) as usize).clamp(1, n - 1);
        let cfg = RunConfig::builder(n).gamma(gamma).colors(vec![c0, n - c0]).build();
        let report = run_protocol(&cfg, seed);
        prop_assert_eq!(report.decisions.len(), n);
        if let Outcome::Consensus(c) = report.outcome {
            prop_assert!(c < 2);
            for d in &report.decisions {
                prop_assert_eq!(*d, Decision::Decided(c));
            }
        }
    }

    /// Determinism: identical (config, seed) ⇒ identical transcript-level
    /// results, for arbitrary seeds.
    #[test]
    fn runs_are_reproducible(seed in any::<u64>()) {
        let cfg = RunConfig::builder(24).gamma(2.0).colors(vec![12, 12]).build();
        let a = run_protocol(&cfg, seed);
        let b = run_protocol(&cfg, seed);
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.metrics.bits_sent, b.metrics.bits_sent);
    }

    /// Certificates: `build` produces a k that matches its own votes for
    /// any vote multiset and modulus.
    #[test]
    fn certificate_k_always_matches_votes(
        votes in proptest::collection::vec((0u32..64, 0u16..24, any::<u64>()), 0..40),
        m in 2u64..1_000_000,
    ) {
        let votes: Vec<VoteRec> = votes
            .into_iter()
            .map(|(voter, round, value)| VoteRec { voter, round, value: value % m })
            .collect();
        let cert = CertData::build(1, 0, votes, m);
        prop_assert_eq!(cert.k, cert.derived_k(m));
        prop_assert!(cert.k < m);
        // Canonical order.
        prop_assert!(cert.votes.is_canonically_sorted());
    }

    /// Modular sum: permutation-invariant and in range.
    #[test]
    fn sum_votes_mod_is_permutation_invariant(
        mut values in proptest::collection::vec(any::<u64>(), 1..30),
        m in 2u64..1_000_000u64,
        rot in 0usize..29,
    ) {
        let votes: Vec<VoteRec> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| VoteRec { voter: i as u32, round: 0, value: v })
            .collect();
        let before = sum_votes_mod(&votes, m);
        let r = rot % values.len();
        values.rotate_left(r);
        let rotated: Vec<VoteRec> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| VoteRec { voter: i as u32, round: 0, value: v })
            .collect();
        prop_assert_eq!(before, sum_votes_mod(&rotated, m));
        prop_assert!(before < m);
    }

    /// Ledger soundness: a certificate consistent with the declarations
    /// passes; tampering with any single relevant vote value fails.
    #[test]
    fn ledger_check_catches_any_single_tamper(
        declared in proptest::collection::vec((1u64..1000, 0u32..8), 1..12),
        tamper_idx in any::<prop::sample::Index>(),
    ) {
        let winner: u32 = 3;
        let m: u64 = 1 << 40;
        // One declaring agent (id 50) with `declared` intents.
        let intents: IntentList = declared
            .iter()
            .map(|&(value, target)| IntentEntry { value, target })
            .collect::<Vec<_>>()
            .into();
        let mut ledger = Ledger::new();
        ledger.declare(50, 0, intents);
        // The honest winner certificate contains exactly the declared
        // votes addressed to `winner`.
        let votes: Vec<VoteRec> = declared
            .iter()
            .enumerate()
            .filter(|(_, &(_, target))| target == winner)
            .map(|(i, &(value, _))| VoteRec { voter: 50, round: i as u16, value })
            .collect();
        let honest = CertData::build(winner, 0, votes.clone(), m);
        prop_assert!(ledger.check_certificate(&honest).is_ok());

        // Tamper with one vote (if any exist for the winner).
        if !votes.is_empty() {
            let idx = tamper_idx.index(votes.len());
            let mut tampered = votes;
            tampered[idx].value = tampered[idx].value.wrapping_add(1) % m;
            let bad = CertData::build(winner, 0, tampered, m);
            prop_assert!(ledger.check_certificate(&bad).is_err());
        }
    }

    /// Intention lists drawn by any core are plausible to any same-params
    /// verifier (agents never mark honest agents faulty for shape).
    #[test]
    fn honest_intents_are_always_plausible(
        n in 4usize..128,
        seed in any::<u64>(),
        id_a in 0u32..4,
        id_b in 0u32..4,
    ) {
        let params = Params::new(n, 2.0);
        let a = rational_fair_consensus::rfc_core::ProtocolCore::new(
            id_a.min(n as u32 - 1), params, params.sync_schedule(), 0, DetRng::seeded(seed, 1));
        let b = rational_fair_consensus::rfc_core::ProtocolCore::new(
            id_b.min(n as u32 - 1), params, params.sync_schedule(), 0, DetRng::seeded(seed, 2));
        prop_assert!(b.intents_plausible(&a.intents));
        prop_assert!(a.intents_plausible(&b.intents));
    }

    /// Fault plans never mark more agents faulty than requested and keep
    /// at least one active agent, for every placement.
    #[test]
    fn fault_plans_respect_counts(
        n in 2usize..200,
        frac in 0.0f64..0.99,
        seed in any::<u64>(),
    ) {
        use rational_fair_consensus::gossip_net::fault::{FaultPlan, Placement};
        for placement in [
            Placement::LowIds,
            Placement::HighIds,
            Placement::Strided,
            Placement::Random { seed },
        ] {
            let plan = FaultPlan::fraction(n, frac, placement);
            prop_assert!(plan.n_active() >= 1);
            prop_assert_eq!(plan.n_faulty() + plan.n_active(), n);
            prop_assert_eq!(plan.flags().count_ones(), plan.n_faulty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With any fault fraction ≤ 0.6 and γ sized by the Chernoff rule,
    /// runs still succeed (statistical smoke over random configs).
    #[test]
    fn sized_gamma_survives_random_fault_configs(
        n in 32usize..96,
        alpha in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        use rational_fair_consensus::gossip_net::fault::Placement;
        let gamma = (rational_fair_consensus::rfc_stats::gamma_for_fault_tolerance(alpha, 1.0)
            + 1.0)
            .max(3.0);
        let cfg = RunConfig::builder(n)
            .gamma(gamma)
            .colors(vec![n - n / 2, n / 2])
            .faults(alpha, Placement::Random { seed })
            .build();
        let report = run_protocol(&cfg, seed ^ 0xABCD);
        // Individual failures are possible but must be rare; accept but
        // count via assertion on the *audit* path instead: re-run once on
        // failure with a different seed and require one success.
        if !report.outcome.is_consensus() {
            let retry = run_protocol(&cfg, seed ^ 0x1234);
            prop_assert!(
                retry.outcome.is_consensus(),
                "two consecutive failures at n={n}, α={alpha:.2}"
            );
        }
    }
}
