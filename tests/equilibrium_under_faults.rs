//! Theorem 7 + Theorem 4 combined: the equilibrium must survive the
//! simultaneous presence of worst-case permanent faults and a rational
//! coalition (the paper proves both for any `αn` faults, `t = o(n/log n)`
//! coalition). Also sweeps coalition sizes beyond the theorem's regime to
//! probe the bound's slack.

use rational_fair_consensus::adversary::harness::run_equilibrium_with;
use rational_fair_consensus::adversary::prelude::*;
use rational_fair_consensus::adversary::strategies::{
    forge_cert::ForgeCert, spy_tune::SpyAndTune, vote_rig::VoteRig,
};
use rational_fair_consensus::gossip_net::fault::Placement;
use rational_fair_consensus::rfc_core::RunConfig;

const N: usize = 64;
const TRIALS: u64 = 50;

fn spec<'a>(strategy: &'a dyn Strategy, t: usize) -> AttackSpec<'a> {
    AttackSpec {
        strategy,
        t,
        selection: CoalitionSelection::Random,
        chi: 1.0,
    }
}

#[test]
fn coalition_plus_faults_still_no_gain() {
    // α = 0.25 faults + coalition of 6, γ sized for the faults.
    for strategy in [
        Box::new(ForgeCert::tuned_vote()) as Box<dyn Strategy>,
        Box::new(VoteRig),
        Box::new(SpyAndTune),
    ] {
        let builder = RunConfig::builder(N)
            .gamma(4.0)
            .faults(0.25, Placement::Random { seed: 3 });
        let rep = run_equilibrium_with(builder, &spec(strategy.as_ref(), 6), TRIALS, 0xFA);
        assert!(
            rep.no_significant_gain(),
            "{} gains under faults: honest {:?} vs dev {:?}",
            strategy.name(),
            rep.honest.color_win_ci(),
            rep.deviating.color_win_ci()
        );
    }
}

#[test]
fn honest_arm_with_faults_respects_active_fair_share() {
    // With random faults, the coalition's fair share is computed over the
    // active set; the honest arm must stay within CI of E[share].
    let builder = RunConfig::builder(N)
        .gamma(4.0)
        .faults(0.25, Placement::Random { seed: 3 });
    let rep = run_equilibrium_with(builder, &spec(&VoteRig, 8), 120, 0xFB);
    // Coalition members can themselves be faulted; expected active share
    // stays 8/64 in expectation. Allow the CI to do the work.
    assert!(
        rep.honest.color_win_ci().contains(8.0 / 64.0)
            || rep.honest.color_win_ci().hi >= 8.0 / 64.0 * 0.5,
        "honest fault-arm share implausible: {:?}",
        rep.honest.color_win_ci()
    );
}

#[test]
fn undetectable_strategies_track_fair_share_even_for_large_t() {
    // Beyond the theorem's o(n/log n) regime: t = n/4 and t = n/2. The
    // undetectable deviations still cannot beat the fair share — the
    // lottery stays uniform as long as ONE honest vote per candidate
    // remains unknown, which holds far beyond the proof's regime.
    for t in [N / 4, N / 2] {
        let rep = run_equilibrium(N, 3.0, &spec(&VoteRig, t), 80, 0xFC);
        let fair = t as f64 / N as f64;
        let ci = rep.deviating.color_win_ci();
        assert!(
            ci.lo <= fair + 0.12,
            "vote-rig at t={t}: win CI {ci:?} should track fair {fair}"
        );
        assert!(rep.no_significant_gain(), "vote-rig at t={t} gained");
    }
}

#[test]
fn spy_tune_breaks_the_equilibrium_at_t_theta_n() {
    // FINDING (documented in EXPERIMENTS.md E7b): at t = n/2 — far outside
    // the theorem's t = o(n/log n) regime — spy-and-tune WINS almost
    // every run. With Θ(n) spies, the coalition harvests every honest
    // intention list before its last member is forced to bind its own
    // declaration, so the balancing vote pins k_leader = 0 exactly: an
    // unbeatable, fully *verifiable* minimum. Lemma 6(3)'s "some honest
    // vote stays unknown" genuinely fails here, which demonstrates the
    // theorem's coalition bound is essential, not proof slack.
    let t = N / 2;
    let rep = run_equilibrium(N, 3.0, &spec(&SpyAndTune, t), 80, 0xFD);
    let ci = rep.deviating.color_win_ci();
    assert!(
        ci.lo > 0.8,
        "spy-tune at t=n/2 should break fairness: {ci:?}"
    );
    assert!(
        rep.deviating.fail_rate() < 0.05,
        "the break is undetectable (no failures): {}",
        rep.deviating.fail_rate()
    );
    // At t = n/8, still inside a comfortable margin, it must NOT break.
    let rep_small = run_equilibrium(N, 3.0, &spec(&SpyAndTune, N / 8), 80, 0xFD);
    assert!(
        rep_small.no_significant_gain(),
        "spy-tune at t=n/8 must stay fair"
    );
}

#[test]
fn forgery_under_faults_still_burns() {
    let builder = RunConfig::builder(N)
        .gamma(4.0)
        .faults(0.3, Placement::Random { seed: 9 });
    let rep = run_equilibrium_with(builder, &spec(&ForgeCert::drop_votes(), 4), TRIALS, 0xFE);
    assert!(
        rep.deviating.fail_rate() > 0.8,
        "forgery must fail even amid faults: {}",
        rep.deviating.fail_rate()
    );
}
