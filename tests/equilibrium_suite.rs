//! Integration tests for the rational-agent claims (Theorem 7 and its
//! Claims 1–4): the whole attack suite at several coalition sizes.

use rational_fair_consensus::adversary::prelude::*;
use rational_fair_consensus::adversary::harness::run_equilibrium;
use rational_fair_consensus::adversary::strategies::{
    forge_cert::ForgeCert, play_dead::PlayDead, spite_abort::SpiteAbort, spy_tune::SpyAndTune,
    vote_rig::VoteRig,
};
use rational_fair_consensus::rfc_core::Outcome;

const N: usize = 48;
const TRIALS: u64 = 60;

fn spec<'a>(strategy: &'a dyn Strategy, t: usize) -> AttackSpec<'a> {
    AttackSpec {
        strategy,
        t,
        selection: CoalitionSelection::Random,
        chi: 1.0,
    }
}

#[test]
fn no_attack_in_the_suite_gains() {
    for strategy in standard_attacks() {
        for t in [1usize, 6] {
            let rep = run_equilibrium(N, 3.0, &spec(strategy.as_ref(), t), TRIALS, 0xE7);
            assert!(
                rep.no_significant_gain(),
                "{} at t={t}: honest {:?} vs deviating {:?}",
                strategy.name(),
                rep.honest.color_win_ci(),
                rep.deviating.color_win_ci()
            );
        }
    }
}

#[test]
fn forgeries_reliably_burn_the_run() {
    // Claim 1 mechanics: a forged minimum that is not the legitimate
    // winner forces failure (never an illegitimate win).
    for strategy in [ForgeCert::zero_k(), ForgeCert::tuned_vote(), ForgeCert::drop_votes()] {
        let rep = run_equilibrium(N, 3.0, &spec(&strategy, 4), TRIALS, 0xE8);
        assert!(
            rep.deviating.fail_rate() > 0.8,
            "{}: fail rate only {}",
            strategy.name(),
            rep.deviating.fail_rate()
        );
        assert!(
            rep.utility_delta() < -0.5,
            "{}: forging must be strongly negative at χ=1 (Δ={})",
            strategy.name(),
            rep.utility_delta()
        );
    }
}

#[test]
fn undetectable_strategies_are_neutral_not_harmful() {
    // Claim 2 mechanics: vote-rig and spy-tune cannot shift k's
    // distribution; they must neither gain nor cause failures.
    for (name, rep) in [
        ("vote-rig", run_equilibrium(N, 3.0, &spec(&VoteRig, 6), TRIALS, 0xE9)),
        ("spy-tune", run_equilibrium(N, 3.0, &spec(&SpyAndTune, 6), TRIALS, 0xEA)),
    ] {
        assert!(
            rep.deviating.fail_rate() < 0.1,
            "{name} should not cause failures: {}",
            rep.deviating.fail_rate()
        );
        assert!(rep.no_significant_gain(), "{name} gained");
    }
}

#[test]
fn spite_abort_trades_losses_for_failures() {
    let rep = run_equilibrium(N, 3.0, &spec(&SpiteAbort, 4), TRIALS, 0xEB);
    // Fail rate ≈ honest losing rate (1 − fair share); utility delta ≤ 0.
    assert!(
        rep.deviating.fail_rate() > 0.5,
        "spite should burn most losing runs: {}",
        rep.deviating.fail_rate()
    );
    assert!(
        rep.utility_delta() <= 0.05,
        "spite cannot profit: Δ = {}",
        rep.utility_delta()
    );
    // Conditional on not failing, the coalition still wins ≈ fair share —
    // spite does not convert losses into wins.
    let win_given_done = rep.deviating.coalition_color_wins as f64
        / rep.deviating.consensus.max(1) as f64;
    assert!(
        win_given_done > 0.5,
        "surviving runs should mostly be coalition wins by construction: {win_given_done}"
    );
}

#[test]
fn play_dead_voting_triggers_verification_failures() {
    // The §1 deviation: pretending to be faulty while voting gets caught
    // whenever a "dead" agent's vote lands in the winner's certificate.
    let rep = run_equilibrium(N, 3.0, &spec(&PlayDead::voting(), 8), 100, 0xEC);
    assert!(
        rep.deviating.fails > 0,
        "with 8 dead-voters some run must catch a ghost vote"
    );
    assert!(rep.no_significant_gain());
}

#[test]
fn play_dead_silent_is_harmless() {
    let rep = run_equilibrium(N, 3.0, &spec(&PlayDead::silent(), 4), TRIALS, 0xED);
    assert!(
        rep.deviating.fail_rate() < 0.1,
        "a perfect crash cannot fail the run: {}",
        rep.deviating.fail_rate()
    );
    assert!(rep.no_significant_gain());
}

#[test]
fn claim4_winner_in_coalition_bounded_by_fair_share() {
    // Pr(Winner ∈ C) ≤ |C|/|A| across the suite (non-failing runs).
    for strategy in standard_attacks() {
        let t = 6;
        let rep = run_equilibrium(N, 3.0, &spec(strategy.as_ref(), t), TRIALS, 0xEE);
        let ci = rep.deviating.winner_ci();
        assert!(
            ci.lo <= t as f64 / N as f64 + 0.05,
            "{}: winner-in-coalition CI {:?} exceeds fair share",
            strategy.name(),
            ci
        );
    }
}

#[test]
fn solo_deviator_cannot_beat_fair_share() {
    // t = 1 is the pure Nash-deviation case.
    for strategy in [
        Box::new(ForgeCert::tuned_vote()) as Box<dyn Strategy>,
        Box::new(SpyAndTune),
        Box::new(VoteRig),
    ] {
        let rep = run_equilibrium(N, 3.0, &spec(strategy.as_ref(), 1), 100, 0xEF);
        assert!(
            rep.no_significant_gain(),
            "{} gains as a solo deviator",
            strategy.name()
        );
    }
}

#[test]
fn attack_trials_report_outcomes_for_all_agents() {
    use rational_fair_consensus::adversary::harness::{coalition_colors, run_attack_trial};
    use rational_fair_consensus::rfc_core::{ColorSpec, RunConfig};
    let members = vec![3u32, 9];
    let mut cfg = RunConfig::builder(N).gamma(3.0).build();
    cfg.colors = ColorSpec::Explicit(coalition_colors(N, &members));
    let strategy = ForgeCert::drop_votes();
    let report = run_attack_trial(&cfg, &strategy, &members, 1);
    assert_eq!(report.decisions.len(), N);
    assert_eq!(report.outcome, Outcome::Fail, "drop-votes should fail the run");
}
