//! Shared golden-corpus digest — the single definition of "bit-identical"
//! that both `golden_runs.rs` (static/sequential corpus) and
//! `sharded_engine.rs` (PerAgent corpus) pin against. Keeping one copy is
//! load-bearing: if `RunReport` ever grows a deterministic field, it is
//! added *here* (with a corpus regen) and every suite moves together.

use rfc_core::runner::RunReport;

/// FNV-1a 64-bit.
pub struct Digest(u64);

impl Digest {
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Digest every deterministic field of a [`RunReport`] **that existed
/// before the dynamics subsystem** — keeping this field set frozen is
/// what lets the static rows of `golden_runs.rs` stay the literal
/// pre-dynamics captures. The one post-dynamics meter,
/// `metrics.undelivered`, is pinned as its own column in each corpus
/// instead of being folded into the digest.
pub fn report_digest(r: &RunReport) -> u64 {
    let mut d = Digest::new();
    d.str(&format!("{:?}", r.outcome));
    d.u64(r.rounds as u64);
    d.str(&format!("{:?}", r.winner));
    d.str(&format!("{:?}", r.decisions));
    for &c in &r.initial_colors {
        d.u64(c as u64);
    }
    d.u64(r.n_active as u64);
    d.str(&format!("{:?}", r.verify_failures));
    d.u64(r.metrics.messages_sent);
    d.u64(r.metrics.bits_sent);
    d.u64(r.metrics.max_message_bits);
    d.u64(r.metrics.rounds);
    d.u64(r.metrics.ticks);
    d.u64(r.metrics.max_active_links);
    for (name, t) in &r.metrics.phases {
        d.str(name);
        d.u64(t.messages);
        d.u64(t.bits);
        d.u64(t.max_message_bits);
    }
    d.str(&format!("{:?}", r.audit));
    d.finish()
}
