//! Property-based resume equivalence: for a *random* configuration —
//! topology × fault plan × loss schedule × scenario script × engine
//! discipline — and a random checkpoint round, snapshot + restore +
//! run-to-completion must equal the straight-through run bit for bit.
//!
//! The corpus in `checkpoint_resume.rs` pins the golden matrix; this
//! file searches the configuration space *around* it, so a checkpoint
//! field that only matters under some combination the hand-written
//! rows never hit (a partition healing right at the boundary, a burst
//! window starting on the snapshot round, …) still gets exercised.

mod common;

use common::report_digest;
use gossip_net::fault::Placement;
use proptest::prelude::*;
use rfc_core::checkpoint::{drive_with_checkpoints, restore_network};
use rfc_core::runner::{RunConfig, TopologySpec};
use rfc_core::{
    build_network_slots, collect_report, honest_slot_factory, LossSchedule, PartitionCut,
    RngDiscipline, ScenarioScript,
};

fn topologies() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        Just(TopologySpec::Complete),
        Just(TopologySpec::Ring),
        (0.25f64..0.6).prop_map(|p| TopologySpec::ErdosRenyi { p }),
        Just(TopologySpec::RandomRegular { d: 6 }),
    ]
}

fn placements() -> impl Strategy<Value = Placement> {
    prop_oneof![
        any::<u64>().prop_map(|seed| Placement::Random { seed }),
        Just(Placement::LowIds),
        Just(Placement::HighIds),
    ]
}

/// (loss schedule, scenario) shapes, parameterized by `n` and `q` at
/// build time via the returned closure inputs.
#[derive(Debug, Clone, Copy)]
enum Adversity {
    r#Static,
    ConstantLoss(u8),
    Burst { from_q8: u8, width: u8 },
    Churn,
    PartitionHeal,
}

fn adversities() -> impl Strategy<Value = Adversity> {
    prop_oneof![
        Just(Adversity::Static),
        (1u8..6).prop_map(Adversity::ConstantLoss),
        (0u8..8, 0u8..6).prop_map(|(from_q8, width)| Adversity::Burst { from_q8, width }),
        Just(Adversity::Churn),
        Just(Adversity::PartitionHeal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_runs_resume_bit_identically(
        n in 12usize..36,
        topo in topologies(),
        fault_frac in 0.0f64..0.3,
        placement in placements(),
        adversity in adversities(),
        per_agent in any::<bool>(),
        threads in 1usize..4,
        ckpt_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut builder = RunConfig::builder(n)
            .gamma(3.0)
            .colors(vec![n - n / 2, n / 2])
            .topology(topo);
        if fault_frac > 0.0 {
            builder = builder.faults(fault_frac, placement);
        }
        let q = RunConfig::builder(n).gamma(3.0).build().params().q;
        match adversity {
            Adversity::Static => {}
            Adversity::ConstantLoss(p8) => {
                builder = builder.message_loss(p8 as f64 / 16.0);
            }
            Adversity::Burst { from_q8, width } => {
                let from = (from_q8 as usize * q) / 2; // 0..4q in q/2 steps
                builder = builder.loss_schedule(LossSchedule::burst(
                    0.05,
                    0.9,
                    from,
                    from + width as usize,
                ));
            }
            Adversity::Churn => {
                builder = builder.scenario(
                    ScenarioScript::new()
                        .crash(q / 2, (n - n / 4..n).map(|i| i as u32).collect())
                        .recover(2 * q, (n - n / 8..n).map(|i| i as u32).collect()),
                );
            }
            Adversity::PartitionHeal => {
                builder = builder.scenario(
                    ScenarioScript::new()
                        .partition(q, PartitionCut::split_at(n, n / 2))
                        .heal(2 * q + 1),
                );
            }
        }
        let mut cfg = builder.build();
        cfg.rng_discipline = if per_agent {
            RngDiscipline::PerAgent
        } else {
            RngDiscipline::Sequential
        };
        cfg.threads = if per_agent { threads } else { 1 };

        let total = 4 * cfg.params().q;
        let ckpt_round = ((ckpt_frac * total as f64) as usize).clamp(1, total);

        // Straight run, snapshotting only at the chosen round.
        let mut net = build_network_slots(&cfg, seed, &mut honest_slot_factory);
        let mut snapshot: Option<Vec<u8>> = None;
        drive_with_checkpoints(&mut net, &cfg, seed, Some(1), &mut |round, bytes| {
            if round == ckpt_round {
                snapshot = Some(bytes.to_vec());
            }
        }).expect("straight run");
        let straight = collect_report(&net, &cfg);
        let straight_ops = net.oplog().events().to_vec();
        let bytes = snapshot.expect("checkpoint round visited");

        // Restore and finish.
        let restored = restore_network(&cfg, &bytes).expect("restore");
        let mut net2 = restored.net;
        drive_with_checkpoints(&mut net2, &cfg, restored.seed, None, &mut |_, _| {})
            .expect("resumed run");
        let resumed = collect_report(&net2, &cfg);

        prop_assert_eq!(
            report_digest(&resumed),
            report_digest(&straight),
            "resume at {}/{} diverged (cfg: {:?})",
            ckpt_round, total, cfg
        );
        prop_assert_eq!(&resumed.metrics, &straight.metrics);
        prop_assert_eq!(net2.oplog().events(), &straight_ops[..]);
    }
}
