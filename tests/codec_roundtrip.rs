//! Property-based wire-codec corpus: for *random* messages and batches —
//! every `Msg` variant, arbitrary intention lists and vote sets, batch
//! tag elision — encode → decode must be the identity, and the two
//! negative paths every real decoder meets (truncated prefix, flipped
//! byte) must return `CodecError`s, never panic. The hand-written rows
//! in `rfc_core::codec`'s unit tests pin the format; this file searches
//! the message space around them, mirroring how `checkpoint_prop.rs`
//! searches around `checkpoint_resume.rs`.

use proptest::prelude::*;
use rfc_core::certificate::{CertData, VoteRec};
use rfc_core::codec::{
    decode_frame, decode_msg, encode_frame, encode_msg, encode_msg_frame, encoded_msg_len,
};
use rfc_core::msg::{Batch, IntentEntry, Msg};

/// Value domain `[m]` used by the certificate strategy (`m = n³` in the
/// protocol; any bound below `u64::MAX` works for the codec).
const M: u64 = 1 << 40;

fn intent_entries() -> impl Strategy<Value = Vec<IntentEntry>> {
    proptest::collection::vec(
        (0u64..M, any::<u32>()).prop_map(|(value, target)| IntentEntry { value, target }),
        0..24,
    )
}

fn vote_recs() -> impl Strategy<Value = Vec<VoteRec>> {
    proptest::collection::vec(
        (any::<u32>(), any::<u16>(), 0u64..M).prop_map(|(voter, round, value)| VoteRec {
            voter,
            round,
            value,
        }),
        0..24,
    )
}

fn msgs() -> impl Strategy<Value = Msg> {
    prop_oneof![
        Just(Msg::QIntent),
        intent_entries().prop_map(|e| Msg::Intents(e.into())),
        (any::<u64>(), any::<u16>()).prop_map(|(value, round)| Msg::Vote { value, round }),
        Just(Msg::QMinCert),
        (any::<u32>(), any::<u32>(), vote_recs())
            .prop_map(|(owner, color, votes)| Msg::cert(CertData::build(owner, color, votes, M))),
    ]
}

fn batches() -> impl Strategy<Value = Batch<Msg>> {
    proptest::collection::vec((any::<u32>(), msgs()), 1..5).prop_map(|parts| {
        let mut it = parts.into_iter();
        let (instance, payload) = it.next().unwrap();
        let mut b = Batch::single(instance, payload);
        for (instance, payload) in it {
            b.push(instance, payload);
        }
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_message_round_trips(msg in msgs()) {
        let mut buf = Vec::new();
        encode_msg(&msg, &mut buf);
        prop_assert_eq!(buf.len(), encoded_msg_len(&msg), "length oracle disagrees");
        let (back, used) = decode_msg(&buf).expect("round trip");
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn every_batch_round_trips_through_a_frame(batch in batches()) {
        let mut buf = Vec::new();
        encode_frame(&batch, &mut buf);
        let (back, used) = decode_frame(&buf).expect("round trip");
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back.parts(), batch.parts());
    }

    #[test]
    fn singleton_instance0_elision_is_invisible_to_decoders(msg in msgs()) {
        // The realized first-part tag elision: framing the bare message
        // and framing its singleton instance-0 batch are the same bytes,
        // and both decode to the same batch.
        let mut bare = Vec::new();
        encode_msg_frame(&msg, &mut bare);
        let mut asbatch = Vec::new();
        encode_frame(&Batch::single(0, msg.clone()), &mut asbatch);
        prop_assert_eq!(&bare, &asbatch, "elision must be bit-for-bit");
        let (back, _) = decode_frame(&bare).expect("decode");
        prop_assert_eq!(back.parts().len(), 1);
        prop_assert_eq!(back.parts()[0].instance, 0);
        prop_assert_eq!(&back.parts()[0].payload, &msg);
    }

    #[test]
    fn truncated_prefixes_error_and_never_panic(batch in batches()) {
        let mut buf = Vec::new();
        encode_frame(&batch, &mut buf);
        for cut in 0..buf.len() {
            prop_assert!(
                decode_frame(&buf[..cut]).is_err(),
                "a {cut}-byte prefix of a {}-byte frame parsed", buf.len()
            );
        }
    }

    #[test]
    fn bit_flips_never_panic(batch in batches(), pos in any::<usize>(), bit in 0u8..8) {
        let mut buf = Vec::new();
        encode_frame(&batch, &mut buf);
        let pos = pos % buf.len();
        buf[pos] ^= 1 << bit;
        // A flipped byte may still decode (a changed value is a legal
        // different message) — the contract is a clean Ok/Err, no panic,
        // and a consumed length that never exceeds the input.
        if let Ok((_, used)) = decode_frame(&buf) {
            prop_assert!(used <= buf.len());
        }
    }
}
