//! Event-runtime equivalence pins: on delay-free configurations the
//! message-triggered driver (`run_protocol_events` over
//! `Network::drive_events`) must replay the tick-driven
//! `run_protocol_async` **bit for bit** — same outcome, same meters,
//! same `report_digest` — across sizes and seeds. This is the contract
//! that keeps the simulator a deterministic-replay arm of the event
//! runtime rather than a second, divergent implementation.
//!
//! With real delays the digests legitimately differ (delivery order
//! changes which votes land inside their phase); there the pin is
//! determinism — same (config, seed, max_delay) twice → same report.

mod common;

use common::report_digest;
use rfc_core::runner::RunConfig;
use rfc_core::{run_protocol_async, run_protocol_events};

fn cfg(n: usize) -> RunConfig {
    RunConfig::builder(n)
        .gamma(3.0)
        .colors(vec![n - n / 2, n / 2])
        .build()
}

#[test]
fn delay_free_event_runtime_replays_tick_driven_digests() {
    for (n, seed, slack) in [
        (16usize, 21u64, 3usize),
        (16, 97, 3),
        (24, 7, 3),
        (32, 5, 2),
        (48, 1234, 3),
    ] {
        let c = cfg(n);
        let tick = run_protocol_async(&c, seed, slack);
        let event = run_protocol_events(&c, seed, slack, 0);
        assert_eq!(
            report_digest(&tick),
            report_digest(&event),
            "delay-free event run diverged from tick-driven (n={n}, seed={seed}, slack={slack})"
        );
        assert_eq!(tick.metrics.undelivered, event.metrics.undelivered);
    }
}

#[test]
fn delayed_event_runtime_is_deterministic() {
    let c = cfg(24);
    for max_delay in [1usize, 3, 8] {
        let a = run_protocol_events(&c, 42, 4, max_delay);
        let b = run_protocol_events(&c, 42, 4, max_delay);
        assert_eq!(
            report_digest(&a),
            report_digest(&b),
            "same-seed delayed runs diverged (max_delay={max_delay})"
        );
        assert_eq!(a.metrics.undelivered, b.metrics.undelivered);
    }
}

#[test]
fn delayed_runs_still_meter_honestly() {
    // The metering contract under real delays: everything metered at
    // send; whatever the budget expiry strands in flight is drained as
    // undelivered, so sent − undelivered still counts exact deliveries.
    let c = cfg(24);
    let r = run_protocol_events(&c, 11, 3, 6);
    assert!(r.metrics.messages_sent > 0);
    assert!(
        r.metrics.undelivered <= r.metrics.messages_sent,
        "undelivered ({}) cannot exceed sent ({})",
        r.metrics.undelivered,
        r.metrics.messages_sent
    );
}
