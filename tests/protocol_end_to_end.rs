//! End-to-end integration tests for protocol `P` across crates:
//! termination, agreement, validity, fairness, determinism, and the
//! communication bounds of Theorem 4.

use rational_fair_consensus::prelude::*;
use rational_fair_consensus::rfc_core::Decision;
use rational_fair_consensus::rfc_stats::{chi_square_gof, wilson95};

#[test]
fn terminates_and_agrees_across_sizes() {
    for n in [8usize, 16, 33, 64, 100, 257] {
        let cfg = RunConfig::builder(n)
            .gamma(3.0)
            .colors(vec![n - n / 2, n / 2])
            .build();
        let report = run_protocol(&cfg, 1234 + n as u64);
        // Termination: every agent reached a terminal state.
        assert_eq!(report.decisions.len(), n);
        // Agreement: either consensus or a (rare, legitimate) failure —
        // never a silent split.
        if let Outcome::Consensus(c) = report.outcome {
            for d in &report.decisions {
                assert_eq!(*d, Decision::Decided(c), "n={n}: split decision");
            }
        }
    }
}

#[test]
fn validity_winning_color_was_supported() {
    // Validity (implied by fairness): the winning color is always one an
    // active agent initially supported.
    for seed in 0..30 {
        let cfg = RunConfig::builder(48).gamma(3.0).colors(vec![16, 16, 16]).build();
        let report = run_protocol(&cfg, seed);
        if let Outcome::Consensus(c) = report.outcome {
            assert!(
                report.initial_colors.contains(&c),
                "seed {seed}: winner color {c} never supported"
            );
            assert!(c < 3, "color out of space");
        }
    }
}

#[test]
fn winner_agent_supports_winning_color() {
    for seed in 0..30 {
        let cfg = RunConfig::builder(32).gamma(3.0).colors(vec![20, 12]).build();
        let report = run_protocol(&cfg, seed);
        if let (Outcome::Consensus(c), Some(w)) = (report.outcome, report.winner) {
            assert_eq!(report.initial_colors[w as usize], c);
        }
    }
}

#[test]
fn deterministic_replay() {
    let cfg = RunConfig::builder(64)
        .gamma(3.0)
        .colors(vec![40, 24])
        .record_ops(true)
        .build();
    let a = run_protocol(&cfg, 777);
    let b = run_protocol(&cfg, 777);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
    assert_eq!(a.metrics.bits_sent, b.metrics.bits_sent);
    assert_eq!(a.audit, b.audit);
}

#[test]
fn fairness_two_to_one_split() {
    // 2/3 vs 1/3 split: over 300 runs the minority should win roughly
    // 100 times; use a Wilson interval wide enough to be deterministic.
    let n = 48;
    let cfg = RunConfig::builder(n).gamma(3.0).colors(vec![32, 16]).build();
    let trials = 300u64;
    let minority_wins = (0..trials)
        .filter(|&s| run_protocol(&cfg, s).outcome == Outcome::Consensus(1))
        .count() as u64;
    let iv = wilson95(minority_wins, trials);
    assert!(
        iv.contains(1.0 / 3.0),
        "minority win rate {minority_wins}/{trials} not compatible with 1/3"
    );
}

#[test]
fn fairness_chi_square_three_colors() {
    let n = 60;
    let cfg = RunConfig::builder(n).gamma(3.0).colors(vec![30, 20, 10]).build();
    let trials = 600u64;
    let mut wins = [0u64; 3];
    let mut fails = 0;
    for s in 0..trials {
        match run_protocol(&cfg, s).outcome {
            Outcome::Consensus(c) => wins[c as usize] += 1,
            Outcome::Fail => fails += 1,
        }
    }
    assert!(fails <= 2, "honest failures should be rare: {fails}");
    let decided: u64 = wins.iter().sum();
    let expected = [
        decided as f64 * 0.5,
        decided as f64 * 2.0 / 6.0,
        decided as f64 / 6.0,
    ];
    let gof = chi_square_gof(&wins, &expected);
    assert!(
        gof.consistent_at(0.001),
        "fairness rejected: wins {wins:?}, p = {}",
        gof.p_value
    );
}

#[test]
fn message_and_round_bounds_scale_polylogarithmically() {
    // Theorem 4 shape check inside the test suite: rounds ratio between
    // n=1024 and n=64 must be log-like (10/6), not linear (16x).
    let small = run_protocol(&RunConfig::builder(64).gamma(3.0).build(), 5);
    let large = run_protocol(&RunConfig::builder(1024).gamma(3.0).build(), 5);
    let round_ratio = large.rounds as f64 / small.rounds as f64;
    assert!(round_ratio < 2.0, "rounds grew too fast: {round_ratio}");
    let size_ratio =
        large.metrics.max_message_bits as f64 / small.metrics.max_message_bits as f64;
    assert!(size_ratio < 4.5, "max message grew too fast: {size_ratio}");
    // Total bits: n·log³n predicts 16·(10/6)³ ≈ 74x between n=64 and
    // n=1024 — far below the quadratic 256x of the LOCAL baselines.
    let bits_ratio = large.metrics.bits_sent as f64 / small.metrics.bits_sent as f64;
    assert!(
        bits_ratio < 90.0,
        "total bits grew faster than n·log³n: {bits_ratio}"
    );
    assert!(
        bits_ratio > 16.0,
        "total bits must grow at least linearly in n: {bits_ratio}"
    );
}

#[test]
fn gossip_constraint_one_active_op_per_agent() {
    let n = 64;
    let cfg = RunConfig::builder(n).gamma(2.0).build();
    let report = run_protocol(&cfg, 9);
    assert!(
        report.metrics.max_active_links <= n as u64,
        "GOSSIP bound violated: {} active links",
        report.metrics.max_active_links
    );
}

#[test]
fn all_phases_appear_in_metrics() {
    let report = run_protocol(&RunConfig::builder(32).gamma(2.0).build(), 3);
    for phase in ["commitment", "voting", "find-min", "coherence"] {
        let tally = report
            .metrics
            .phase(phase)
            .unwrap_or_else(|| panic!("phase {phase} missing"));
        assert!(tally.messages > 0, "phase {phase} sent nothing");
    }
}

#[test]
fn uniform_start_instantly_fair() {
    // All agents share one color: it must win whenever the run succeeds.
    let mut cfg = RunConfig::builder(24).gamma(3.0).build();
    cfg.colors = rational_fair_consensus::rfc_core::ColorSpec::Uniform;
    for seed in 0..10 {
        let report = run_protocol(&cfg, seed);
        if report.outcome.is_consensus() {
            assert_eq!(report.outcome, Outcome::Consensus(0));
        }
    }
}
