//! Resume-equivalence corpus (tier-2): checkpoint-at-r + restore +
//! run-to-completion must be **bit-identical** to the straight-through
//! run — same `report_digest`, same `Metrics` (full `PartialEq`,
//! including the current-phase pointer), same op-log event for event.
//!
//! The corpus mirrors the golden matrices exactly: every static row of
//! `golden_runs.rs` (sequential engine), every sharded row of
//! `sharded_engine.rs` under `RngDiscipline::PerAgent` at the
//! `RFC_THREADS` counts, plus cross-thread resume (snapshot under one
//! shard count, resume under another) and equilibrium-arm trial resume.
//! Straight-through runs go through `run_protocol` — the canonical
//! runner, itself pinned by the golden suites — so this file needs no
//! pinned constants of its own: if resume matches straight-through and
//! straight-through matches the golden capture, resume matches the
//! capture.
//!
//! Negative paths ride along: truncated files, wrong version, wrong
//! `n`, wrong config, and garbage bodies must come back as typed
//! [`CheckpointError`]s, never panics.

mod common;

use common::report_digest;
use gossip_net::fault::Placement;
use gossip_net::oplog::OpEvent;
use rfc_core::checkpoint::{
    self, checkpoint_rounds, config_fingerprint, drive_with_checkpoints, peek_header,
    restore_network, CheckpointError,
};
use rfc_core::runner::{RunConfig, RunReport, TopologySpec};
use rfc_core::{
    build_network_slots, collect_report, honest_slot_factory, run_protocol, LossSchedule,
    PartitionCut, RngDiscipline, ScenarioScript,
};

/// The static golden matrix (mirrors `golden_runs.rs` row for row).
fn static_corpus() -> Vec<(&'static str, RunConfig, u64)> {
    let q = RunConfig::builder(32).gamma(3.0).build().params().q;
    vec![
        (
            "complete/n24/balanced",
            RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build(),
            1,
        ),
        (
            "complete/n24/balanced/seed2",
            RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build(),
            2,
        ),
        (
            "complete/n32/faults-random",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .faults(0.25, Placement::Random { seed: 5 })
                .build(),
            3,
        ),
        (
            "complete/n32/faults-lowids",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .faults(0.25, Placement::LowIds)
                .build(),
            4,
        ),
        (
            "ring/n48/three-colors",
            RunConfig::builder(48)
                .gamma(4.0)
                .colors(vec![16, 16, 16])
                .topology(TopologySpec::Ring)
                .build(),
            5,
        ),
        (
            "erdos-renyi/n48",
            RunConfig::builder(48)
                .gamma(4.0)
                .colors(vec![24, 24])
                .topology(TopologySpec::ErdosRenyi { p: 0.3 })
                .build(),
            6,
        ),
        (
            "random-regular/n40/d8",
            RunConfig::builder(40)
                .gamma(4.0)
                .colors(vec![20, 20])
                .topology(TopologySpec::RandomRegular { d: 8 })
                .build(),
            7,
        ),
        (
            "complete/n32/loss-0.25",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .message_loss(0.25)
                .build(),
            8,
        ),
        (
            "complete/n24/record-ops",
            RunConfig::builder(24)
                .gamma(3.0)
                .colors(vec![12, 12])
                .record_ops(true)
                .build(),
            9,
        ),
        (
            "complete/n24/leader-election",
            RunConfig::builder(24).gamma(3.0).leader_election().build(),
            10,
        ),
        (
            "complete/n32/faults-highids+loss",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .faults(0.125, Placement::HighIds)
                .message_loss(0.1)
                .build(),
            11,
        ),
        (
            "complete/n32/skip-coherence",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .skip_coherence(true)
                .build(),
            12,
        ),
        (
            "dynamic/n32/churn",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .scenario(
                    ScenarioScript::new()
                        .crash(q / 2, (24..32).collect())
                        .recover(2 * q, (28..32).collect()),
                )
                .build(),
            13,
        ),
        (
            "dynamic/n32/partition-heal",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .scenario(
                    ScenarioScript::new()
                        .partition(2 * q, PartitionCut::split_at(32, 16))
                        .heal(2 * q + q / 2),
                )
                .build(),
            14,
        ),
        (
            "dynamic/n32/loss-burst",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .loss_schedule(LossSchedule::burst(0.05, 0.9, 2 * q, 2 * q + 4))
                .build(),
            15,
        ),
    ]
}

/// The sharded golden matrix (mirrors `sharded_engine.rs`), spelled
/// sequential; the caller applies PerAgent + a thread count.
fn sharded_corpus() -> Vec<(&'static str, RunConfig, u64)> {
    let q = RunConfig::builder(32).gamma(3.0).build().params().q;
    vec![
        (
            "sharded/complete/n24/balanced",
            RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build(),
            1,
        ),
        (
            "sharded/complete/n32/faults+loss",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .faults(0.25, Placement::Random { seed: 5 })
                .message_loss(0.25)
                .build(),
            2,
        ),
        (
            "sharded/ring/n48/three-colors",
            RunConfig::builder(48)
                .gamma(4.0)
                .colors(vec![16, 16, 16])
                .topology(TopologySpec::Ring)
                .build(),
            3,
        ),
        (
            "sharded/complete/n24/record-ops+loss",
            RunConfig::builder(24)
                .gamma(3.0)
                .colors(vec![12, 12])
                .record_ops(true)
                .message_loss(0.1)
                .build(),
            4,
        ),
        (
            "sharded/dynamic/n32/churn+burst",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .scenario(
                    ScenarioScript::new()
                        .crash(q / 2, (24..32).collect())
                        .recover(2 * q, (28..32).collect()),
                )
                .loss_schedule(LossSchedule::burst(0.05, 0.9, 2 * q, 2 * q + 4))
                .build(),
            5,
        ),
        (
            "sharded/dynamic/n32/partition-heal",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .scenario(
                    ScenarioScript::new()
                        .partition(2 * q, PartitionCut::split_at(32, 16))
                        .heal(2 * q + q / 2),
                )
                .build(),
            6,
        ),
        (
            "sharded/complete/n40/leader-election",
            RunConfig::builder(40).gamma(3.0).leader_election().build(),
            7,
        ),
        (
            "sharded/complete/n64/record-ops+loss",
            RunConfig::builder(64)
                .gamma(3.0)
                .colors(vec![32, 32])
                .record_ops(true)
                .message_loss(0.15)
                .build(),
            8,
        ),
    ]
}

/// `RFC_THREADS` counts (the ci.sh knob), default `{1, 2, 8}`.
fn thread_counts() -> Vec<usize> {
    match std::env::var("RFC_THREADS") {
        Ok(s) => {
            let counts: Vec<usize> =
                s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
            assert!(!counts.is_empty(), "RFC_THREADS set but unparsable: {s:?}");
            counts
        }
        Err(_) => vec![1, 2, 8],
    }
}

/// Everything a straight-through run produces that resume must
/// reproduce: the report (compared via digest + full `Metrics`
/// equality) and the op-log, event for event.
struct Baseline {
    report: RunReport,
    oplog: Vec<OpEvent>,
    snapshots: Vec<(usize, Vec<u8>)>,
}

/// One straight-through run, snapshotting at every multiple of `every`.
fn straight_with_snapshots(cfg: &RunConfig, seed: u64, every: usize) -> Baseline {
    let mut net = build_network_slots(cfg, seed, &mut honest_slot_factory);
    let mut snapshots = Vec::new();
    drive_with_checkpoints(&mut net, cfg, seed, Some(every), &mut |round, bytes| {
        snapshots.push((round, bytes.to_vec()));
    })
    .expect("straight run with snapshots");
    Baseline {
        report: collect_report(&net, cfg),
        oplog: net.oplog().events().to_vec(),
        snapshots,
    }
}

/// Restore `bytes` under `cfg` and run to completion; return the report
/// and op-log.
fn finish_from(cfg: &RunConfig, bytes: &[u8]) -> (RunReport, Vec<OpEvent>) {
    let restored = restore_network(cfg, bytes).expect("restore");
    let mut net = restored.net;
    drive_with_checkpoints(&mut net, cfg, restored.seed, None, &mut |_, _| {})
        .expect("finish restored run");
    (collect_report(&net, cfg), net.oplog().events().to_vec())
}

/// Resume cadence: about five snapshots per run (plus the final
/// boundary), so the quadratic corpus stays CI-sized while still
/// crossing every phase of the schedule.
fn cadence(cfg: &RunConfig) -> usize {
    let q = cfg.params().q;
    let total = if cfg.skip_coherence { 3 * q } else { 4 * q };
    (total / 5).max(1)
}

/// The core contract, applied to one row: every snapshot of the
/// straight run resumes to the identical end state.
fn assert_resume_equivalent(label: &str, cfg: &RunConfig, seed: u64) {
    let every = cadence(cfg);
    let base = straight_with_snapshots(cfg, seed, every);
    // The straight-with-snapshots path must itself match the canonical
    // runner (snapshot emission cannot perturb the run).
    let canonical = run_protocol(cfg, seed);
    assert_eq!(
        report_digest(&base.report),
        report_digest(&canonical),
        "{label}: snapshot emission changed the run"
    );
    assert_eq!(
        base.report.metrics, canonical.metrics,
        "{label}: snapshot emission changed the metrics"
    );
    let q = cfg.params().q;
    let total = if cfg.skip_coherence { 3 * q } else { 4 * q };
    assert_eq!(
        base.snapshots.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        checkpoint_rounds(total, every),
        "{label}: snapshot rounds off-cadence"
    );
    for (round, bytes) in &base.snapshots {
        let header = peek_header(bytes).expect("self-describing header");
        assert_eq!(header.round, *round, "{label}: header round");
        assert_eq!(header.n, cfg.n, "{label}: header n");
        assert_eq!(header.seed, seed, "{label}: header seed");
        let (report, oplog) = finish_from(cfg, bytes);
        assert_eq!(
            report_digest(&report),
            report_digest(&base.report),
            "{label}: resume at round {round} diverged"
        );
        assert_eq!(
            report.metrics, base.report.metrics,
            "{label}: resume at round {round} diverged in metrics"
        );
        assert_eq!(
            oplog, base.oplog,
            "{label}: resume at round {round} diverged in the op-log"
        );
    }
}

#[test]
fn static_corpus_resumes_bit_identically() {
    for (label, cfg, seed) in static_corpus() {
        assert_resume_equivalent(label, &cfg, seed);
    }
}

#[test]
fn sharded_corpus_resumes_bit_identically() {
    for &threads in &thread_counts() {
        for (label, cfg, seed) in sharded_corpus() {
            let mut cfg = cfg;
            cfg.rng_discipline = RngDiscipline::PerAgent;
            cfg.threads = threads;
            cfg.shard_floor = Some(0); // tiny n: keep real multi-shard runs
            assert_resume_equivalent(&format!("{label}@t{threads}"), &cfg, seed);
        }
    }
}

#[test]
fn resume_is_thread_count_portable() {
    // Snapshot under one shard count, resume under another: the config
    // fingerprint normalizes `threads`, and the staged engine is
    // thread-invariant, so every pairing must land on the same digest.
    let counts = thread_counts();
    for (label, cfg, seed) in sharded_corpus().into_iter().take(3) {
        let spell = |threads: usize| {
            let mut c = cfg.clone();
            c.rng_discipline = RngDiscipline::PerAgent;
            c.threads = threads;
            c.shard_floor = Some(0); // tiny n: keep real multi-shard runs
            c
        };
        let from = spell(counts[0]);
        let base = straight_with_snapshots(&from, seed, cadence(&from));
        let (mid_round, mid_bytes) = &base.snapshots[base.snapshots.len() / 2];
        for &to in &counts[1..] {
            let to_cfg = spell(to);
            let (report, oplog) = finish_from(&to_cfg, mid_bytes);
            assert_eq!(
                report_digest(&report),
                report_digest(&base.report),
                "{label}: snapshot@t{} round {mid_round} resumed@t{to} diverged",
                counts[0]
            );
            assert_eq!(oplog, base.oplog, "{label}: cross-thread op-log diverged");
        }
    }
}

#[test]
fn loss_schedule_edges_resume_at_their_boundaries() {
    // Loss-schedule edge shapes, snapshotted exactly ON each schedule
    // boundary (the round a burst begins / ends is the round most
    // likely to expose an off-by-one between `p_at(round)` and the
    // restored round counter): zero-width burst (normalizes to
    // constant), overlapping bursts (piecewise), and a burst whose
    // window starts right at a snapshot round.
    let q = RunConfig::builder(32).gamma(3.0).build().params().q;
    let rows: Vec<(&str, LossSchedule, Vec<usize>)> = vec![
        (
            "zero-width-burst",
            LossSchedule::burst(0.2, 0.9, 2 * q, 2 * q),
            vec![2 * q],
        ),
        (
            "overlapping-bursts",
            LossSchedule::piecewise(vec![
                (0, 0.05),
                (q, 0.9),
                (2 * q, 0.05),
                (q + q / 2, 0.8),
                (2 * q + 4, 0.05),
            ]),
            vec![q, q + q / 2, 2 * q, 2 * q + 4],
        ),
        (
            "burst-at-boundary",
            LossSchedule::burst(0.05, 0.9, 2 * q, 2 * q + 4),
            vec![2 * q - 1, 2 * q, 2 * q + 4],
        ),
    ];
    for (label, schedule, boundaries) in rows {
        let cfg = RunConfig::builder(32)
            .gamma(3.0)
            .colors(vec![16, 16])
            .loss_schedule(schedule)
            .build();
        let mut net = build_network_slots(&cfg, 21, &mut honest_slot_factory);
        let mut wanted = Vec::new();
        drive_with_checkpoints(&mut net, &cfg, 21, Some(1), &mut |round, bytes| {
            if boundaries.contains(&round) {
                wanted.push((round, bytes.to_vec()));
            }
        })
        .expect("straight run");
        let straight = collect_report(&net, &cfg);
        let straight_ops = net.oplog().events().to_vec();
        assert_eq!(wanted.len(), boundaries.len(), "{label}: missed a boundary");
        for (round, bytes) in &wanted {
            let (report, oplog) = finish_from(&cfg, bytes);
            assert_eq!(
                report_digest(&report),
                report_digest(&straight),
                "{label}: resume on boundary round {round} diverged"
            );
            assert_eq!(report.metrics, straight.metrics, "{label}@{round}");
            assert_eq!(oplog, straight_ops, "{label}@{round}");
        }
    }
}

#[test]
fn resumed_runs_stay_resumable() {
    // Chained resume: snapshot → resume while snapshotting again →
    // resume the second-generation snapshot. All three end states match.
    let (label, cfg, seed) = &static_corpus()[7]; // loss-0.25
    let every = cadence(cfg);
    let base = straight_with_snapshots(cfg, *seed, every);
    let (_, first) = &base.snapshots[0];
    let restored = restore_network(cfg, first).expect("restore gen-1");
    let mut net = restored.net;
    let mut gen2 = Vec::new();
    drive_with_checkpoints(&mut net, cfg, restored.seed, Some(every), &mut |round, bytes| {
        gen2.push((round, bytes.to_vec()));
    })
    .expect("resume gen-1");
    assert_eq!(
        report_digest(&collect_report(&net, cfg)),
        report_digest(&base.report),
        "{label}: gen-1 resume diverged"
    );
    assert!(!gen2.is_empty(), "resumed run emitted no snapshots");
    let (round, bytes) = gen2.last().unwrap();
    let (report, oplog) = finish_from(cfg, bytes);
    assert_eq!(
        report_digest(&report),
        report_digest(&base.report),
        "{label}: gen-2 resume at round {round} diverged"
    );
    assert_eq!(oplog, base.oplog);
}

#[test]
fn equilibrium_arms_resume_at_trial_indices() {
    use adversary::{
        equilibrium_config, run_equilibrium_span, run_equilibrium_with, ArmStats, AttackSpec,
        CoalitionSelection,
    };
    let strategy = adversary::standard_attacks()
        .into_iter()
        .next()
        .expect("at least one strategy");
    let spec = AttackSpec {
        strategy: strategy.as_ref(),
        t: 4,
        selection: CoalitionSelection::Spread,
        chi: 1.0,
    };
    let master_seed = 0xA11CE;
    let trials = 12u64;
    let builder = || RunConfig::builder(24).gamma(3.0).message_loss(0.1);
    let full = run_equilibrium_with(builder(), &spec, trials, master_seed);
    // Split the sweep at every boundary; the in-place span accumulation
    // must reproduce the one-shot arms exactly (PartialEq covers the
    // f64 utility sums, so float addition order is checked too).
    for k in 0..=trials {
        let (cfg, members) = equilibrium_config(builder(), &spec, master_seed);
        let mut honest = ArmStats::default();
        let mut deviating = ArmStats::default();
        run_equilibrium_span(&cfg, &spec, &members, 0..k, master_seed, &mut honest, &mut deviating);
        // "Persist" through the restore constructor, as a checkpointing
        // caller would.
        let mut honest = ArmStats::restore(
            honest.trials,
            honest.consensus,
            honest.fails,
            honest.coalition_color_wins,
            honest.winner_in_coalition,
            honest.utility_sum(),
        );
        let mut deviating = ArmStats::restore(
            deviating.trials,
            deviating.consensus,
            deviating.fails,
            deviating.coalition_color_wins,
            deviating.winner_in_coalition,
            deviating.utility_sum(),
        );
        run_equilibrium_span(
            &cfg,
            &spec,
            &members,
            k..trials,
            master_seed,
            &mut honest,
            &mut deviating,
        );
        assert_eq!(honest, full.honest, "honest arm diverged when split at {k}");
        assert_eq!(
            deviating, full.deviating,
            "deviating arm diverged when split at {k}"
        );
    }
}

#[test]
fn checkpoints_are_compact_and_self_describing() {
    // "Compact": a mid-run snapshot of a 48-agent ledger-heavy run must
    // cost far less than the ~n² intent-list blowup a naive (non-
    // interned) encoder would pay. Every agent's ledger holds up to n
    // intent lists of q pairs; interning makes that n lists total, so
    // the per-agent cost stays O(n + q·own-data), not O(n·q).
    let cfg = RunConfig::builder(48)
        .gamma(4.0)
        .colors(vec![24, 24])
        .build();
    let q = cfg.params().q;
    let base = straight_with_snapshots(&cfg, 6, cadence(&cfg));
    let (round, bytes) = &base.snapshots[base.snapshots.len() / 2];
    assert!(*round > q, "want a post-commitment snapshot");
    let n = cfg.n;
    // Interned budget: pool of n intent lists (q entries × ~2×u64 varint
    // ≤ 18 bytes each) + per-agent ledger refs/votes/rng. The naive
    // bound is n× larger; assert we stay within a small multiple of the
    // interned estimate.
    let interned_estimate = n * q * 18 + n * (n * 4 + q * 10 + 64);
    assert!(
        bytes.len() < interned_estimate,
        "checkpoint is {} bytes; interned-sharing estimate is {}",
        bytes.len(),
        interned_estimate
    );
    let naive_floor = n * n * q * 8; // every ledger row re-serialized
    assert!(
        bytes.len() * 4 < naive_floor,
        "checkpoint ({} bytes) should be ≪ the naive no-sharing floor ({})",
        bytes.len(),
        naive_floor
    );
    let header = peek_header(bytes).expect("header");
    assert_eq!(header.n, n);
    assert_eq!(header.round, *round);
    assert_eq!(header.config_fingerprint, config_fingerprint(&cfg));
}

// ---------------------------------------------------------------------
// Negative paths: typed errors, never panics.
// ---------------------------------------------------------------------

fn some_checkpoint() -> (RunConfig, Vec<u8>) {
    let cfg = RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build();
    let base = straight_with_snapshots(&cfg, 1, cadence(&cfg));
    let bytes = base.snapshots[1].1.clone();
    (cfg, bytes)
}

#[test]
fn truncated_checkpoints_error_cleanly() {
    let (cfg, bytes) = some_checkpoint();
    // Every strict prefix must fail with a typed error, not a panic.
    // (Step 7 keeps the loop linear; the header boundary and a byte
    // sweep near it are covered exactly.)
    for cut in (0..bytes.len()).step_by(7).chain(bytes.len() - 3..bytes.len()) {
        let err = match restore_network(&cfg, &bytes[..cut]) {
            Err(e) => e,
            Ok(_) => panic!("cut at {cut}: prefix accepted"),
        };
        match err {
            CheckpointError::Truncated | CheckpointError::Corrupt(_) => {}
            other => panic!("cut at {cut}: unexpected error {other}"),
        }
    }
}

#[test]
fn wrong_version_is_reported() {
    let (cfg, mut bytes) = some_checkpoint();
    bytes[4] = 99; // version u16 LE lives right after the 4-byte magic
    match restore_network(&cfg, &bytes) {
        Err(CheckpointError::WrongVersion { found }) => assert_eq!(found, 99),
        Err(other) => panic!("expected WrongVersion, got {other}"),
        Ok(_) => panic!("wrong version accepted"),
    }
}

#[test]
fn bad_magic_is_reported() {
    let (cfg, mut bytes) = some_checkpoint();
    bytes[0] = b'X';
    assert!(matches!(
        restore_network(&cfg, &bytes),
        Err(CheckpointError::BadMagic)
    ));
}

#[test]
fn n_mismatch_is_reported_before_body_decode() {
    let (_, bytes) = some_checkpoint();
    let other = RunConfig::builder(32).gamma(3.0).colors(vec![16, 16]).build();
    match restore_network(&other, &bytes) {
        Err(CheckpointError::NMismatch { expected, found }) => {
            assert_eq!((expected, found), (32, 24));
        }
        Err(other) => panic!("expected NMismatch, got {other}"),
        Ok(_) => panic!("n mismatch accepted"),
    }
}

#[test]
fn config_mismatch_is_reported() {
    let (_, bytes) = some_checkpoint();
    // Same n, different protocol parameters ⇒ fingerprint mismatch.
    let other = RunConfig::builder(24).gamma(4.0).colors(vec![12, 12]).build();
    assert!(matches!(
        restore_network(&other, &bytes),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
    // But a different *thread spelling* of the same run is accepted:
    // the fingerprint normalizes threads (cross-thread resume is legal).
    let (cfg, bytes) = some_checkpoint();
    let mut resharded = cfg.clone();
    resharded.threads = 4;
    assert!(restore_network(&resharded, &bytes).is_ok());
}

#[test]
fn instance_plan_mismatch_is_reported() {
    // A checkpoint taken under the default single-consensus plan must
    // refuse to restore into a differently-shaped instance plane: the
    // instance plan is part of RunConfig's Debug form, so the config
    // fingerprint covers instance count *and* kinds end to end.
    let (cfg, bytes) = some_checkpoint();
    let mut two_instances = cfg.clone();
    two_instances.instances = rfc_core::InstancePlan::consensus(2);
    match restore_network(&two_instances, &bytes) {
        Err(CheckpointError::ConfigMismatch { expected, found }) => {
            assert_ne!(expected, found, "fingerprints must differ");
        }
        Err(other) => panic!("expected ConfigMismatch, got {other}"),
        Ok(_) => panic!("instance-plan mismatch accepted"),
    }
    // A different *kind* at the same count is also rejected.
    let mut rumor = cfg.clone();
    rumor.instances = rfc_core::InstancePlan::rumor(1, 8);
    assert!(matches!(
        restore_network(&rumor, &bytes),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
    // The same plan spelled explicitly is accepted (it IS the default).
    let mut same = cfg.clone();
    same.instances = rfc_core::InstancePlan::single_consensus();
    assert!(restore_network(&same, &bytes).is_ok());
}

#[test]
fn garbage_bodies_error_cleanly() {
    let (cfg, bytes) = some_checkpoint();
    // Flip bytes throughout the body; any outcome but a panic or an
    // accepted-but-different run is fine, and most flips must be caught.
    let header_len = 4 + 2 + 8 + 8; // magic + version + seed + fingerprint
    let mut caught = 0usize;
    let mut tried = 0usize;
    for pos in (header_len..bytes.len()).step_by(11) {
        let mut b = bytes.clone();
        b[pos] ^= 0xA5;
        tried += 1;
        match restore_network(&cfg, &b) {
            Err(_) => caught += 1,
            Ok(restored) => {
                // A flip the decoder structurally tolerated (e.g. inside
                // an RNG word) — it must still finish without panicking.
                let mut net = restored.net;
                let _ = drive_with_checkpoints(&mut net, &cfg, restored.seed, None, &mut |_, _| {});
            }
        }
    }
    assert!(tried > 20, "sweep too small: {tried}");
    assert!(
        caught * 2 > tried,
        "only {caught}/{tried} corruptions were caught as typed errors"
    );
    // Pure noise never parses.
    let noise: Vec<u8> = (0..256u32).map(|i| (i * 37 + 11) as u8).collect();
    assert!(restore_network(&cfg, &noise).is_err());
    assert!(restore_network(&cfg, &[]).is_err());
    assert!(checkpoint::peek_header(&noise).is_err());
}
