//! Integration tests for the extension surfaces: non-complete
//! topologies, the asynchronous scheduler, baselines, and the audit.

use rational_fair_consensus::baselines::rumor::{spread_rumor, Mechanism};
use rational_fair_consensus::gossip_net::fault::FaultPlan;
use rational_fair_consensus::gossip_net::topology::Topology;
use rational_fair_consensus::prelude::*;
use rational_fair_consensus::rfc_core::TopologySpec;

#[test]
fn dense_random_graphs_behave_like_complete() {
    let n = 64;
    for topo in [
        TopologySpec::ErdosRenyi { p: 0.3 },
        TopologySpec::RandomRegular { d: 16 },
    ] {
        let cfg = RunConfig::builder(n)
            .gamma(3.0)
            .colors(vec![32, 32])
            .topology(topo.clone())
            .build();
        let successes = (0..20u64)
            .filter(|&s| run_protocol(&cfg, s).outcome.is_consensus())
            .count();
        assert!(
            successes >= 18,
            "{topo:?}: only {successes}/20 runs succeeded"
        );
    }
}

#[test]
fn ring_never_reaches_global_consensus_and_exhibits_splits() {
    // Finding (E12a): on the ring the protocol cannot converge in
    // O(log n) rounds, and — more interestingly — its failure detection
    // is only *local*: Coherence compares certificates between sampled
    // peers, which on the ring are neighbors inside the same region.
    // Distant regions therefore silently decide different colors. The
    // global outcome is still Fail (boundary agents detect mismatches),
    // but per-agent decisions split: the paper's machinery genuinely
    // relies on the complete graph's mixing, which is exactly why the
    // Conclusions pose other graph classes as an open problem.
    let n = 48;
    let cfg = RunConfig::builder(n)
        .gamma(3.0)
        .colors(vec![24, 24])
        .topology(TopologySpec::Ring)
        .build();
    let mut splits = 0;
    for seed in 0..10 {
        let report = run_protocol(&cfg, seed);
        assert!(!report.outcome.is_consensus(), "ring should not succeed");
        let decided: std::collections::HashSet<_> = report
            .decisions
            .iter()
            .filter_map(|d| match d {
                rational_fair_consensus::rfc_core::Decision::Decided(c) => Some(*c),
                _ => None,
            })
            .collect();
        if decided.len() > 1 {
            splits += 1;
        }
    }
    assert!(splits > 0, "ring regions should decide locally (split)");
}

#[test]
fn async_scheduler_succeeds_with_slack_two() {
    let cfg = RunConfig::builder(32).gamma(3.0).colors(vec![16, 16]).build();
    let successes = (0..15u64)
        .filter(|&s| run_protocol_async(&cfg, s, 2).outcome.is_consensus())
        .count();
    assert!(successes >= 13, "async slack-2: {successes}/15");
}

#[test]
fn async_and_sync_agree_on_fairness_direction() {
    // Both schedulers must give the majority color the majority of wins.
    let n = 32;
    let cfg = RunConfig::builder(n).gamma(3.0).colors(vec![24, 8]).build();
    let trials = 60u64;
    let sync_majority = (0..trials)
        .filter(|&s| run_protocol(&cfg, s).outcome == Outcome::Consensus(0))
        .count();
    let async_majority = (0..trials)
        .filter(|&s| run_protocol_async(&cfg, s, 2).outcome == Outcome::Consensus(0))
        .count();
    assert!(sync_majority as f64 > trials as f64 * 0.55);
    assert!(async_majority as f64 > trials as f64 * 0.55);
}

#[test]
fn rumor_spreading_is_logarithmic_on_complete_linear_on_ring() {
    let complete = spread_rumor(
        Topology::complete(256),
        FaultPlan::none(256),
        Mechanism::PushPull,
        3,
        4096,
    );
    let ring = spread_rumor(
        Topology::ring(256),
        FaultPlan::none(256),
        Mechanism::PushPull,
        3,
        4096,
    );
    let c = complete.rounds_to_full.expect("complete finishes");
    let r = ring.rounds_to_full.expect("ring finishes within budget");
    assert!(c < 40, "complete graph: {c} rounds");
    assert!(r > 64, "ring must be at least diameter-ish: {r} rounds");
    assert!(r > 4 * c, "separation between topologies");
}

#[test]
fn audit_is_good_on_honest_runs_and_detects_m_ablation() {
    let good_cfg = RunConfig::builder(64)
        .gamma(3.0)
        .record_ops(true)
        .build();
    let report = run_protocol(&good_cfg, 21);
    assert!(report.audit.unwrap().is_good());

    let bad_cfg = RunConfig::builder(64)
        .gamma(3.0)
        .m(4)
        .record_ops(true)
        .build();
    let report = run_protocol(&bad_cfg, 21);
    assert!(!report.audit.unwrap().k_values_distinct);
}

#[test]
fn experiments_registry_runs_a_small_one() {
    // Make sure the experiment harness is wired end-to-end (the quick
    // variants of each experiment run in their own unit tests).
    let opts = rational_fair_consensus::experiments::ExpOptions {
        quick: true,
        seed: 1,
        threads: 2,
        ..Default::default()
    };
    let tables =
        rational_fair_consensus::experiments::run_by_id("e01", &opts).expect("e01 exists");
    assert!(!tables.is_empty());
    assert!(!tables[0].rows.is_empty());
    let csv = tables[0].to_csv();
    assert!(csv.lines().count() > 1);
}
