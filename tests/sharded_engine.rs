//! Sharded-engine golden rows + thread-invariance suite (tier-2).
//!
//! The staged engine under [`RngDiscipline::PerAgent`] is a *new*
//! deterministic behavior: its loss draws come from per-(seed, round,
//! agent) streams, so its digests differ from the sequential corpus in
//! `golden_runs.rs` (which stays the literal pre-staged capture). This
//! suite pins the sharded behavior the same way:
//!
//! * every row's `RunReport` digest is **bit-identical across thread
//!   counts** — the counts come from `RFC_THREADS` (comma-separated,
//!   default `1,2,8`), which is how `ci.sh` drives the invariance check;
//! * the digest at *any* thread count matches the pinned capture, so a
//!   refactor cannot silently change sharded behavior even uniformly.
//!
//! Regenerating (after an *intentional* behavior change only):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test sharded_engine -- --nocapture
//! ```
//!
//! then paste the printed table over `GOLDEN` below and say in the PR
//! why the digests moved.

mod common;

use common::report_digest;
use gossip_net::fault::Placement;
use rfc_core::runner::{RunConfig, TopologySpec};
use rfc_core::run_protocol;
use rfc_core::{LossSchedule, PartitionCut, RngDiscipline, ScenarioScript};

/// Thread counts to check: `RFC_THREADS="1,2,8"` (the ci.sh knob), or
/// the default `{1, 2, 8}`.
fn thread_counts() -> Vec<usize> {
    match std::env::var("RFC_THREADS") {
        Ok(s) => {
            let counts: Vec<usize> =
                s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
            assert!(!counts.is_empty(), "RFC_THREADS set but unparsable: {s:?}");
            counts
        }
        Err(_) => vec![1, 2, 8],
    }
}

/// The sharded corpus: label, *sequential-spelled* config (the sharded
/// preset is applied per thread count by the test), seed.
fn corpus() -> Vec<(&'static str, RunConfig, u64)> {
    let q = RunConfig::builder(32).gamma(3.0).build().params().q;
    vec![
        (
            "sharded/complete/n24/balanced",
            RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build(),
            1,
        ),
        (
            "sharded/complete/n32/faults+loss",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .faults(0.25, Placement::Random { seed: 5 })
                .message_loss(0.25)
                .build(),
            2,
        ),
        (
            "sharded/ring/n48/three-colors",
            RunConfig::builder(48)
                .gamma(4.0)
                .colors(vec![16, 16, 16])
                .topology(TopologySpec::Ring)
                .build(),
            3,
        ),
        (
            "sharded/complete/n24/record-ops+loss",
            RunConfig::builder(24)
                .gamma(3.0)
                .colors(vec![12, 12])
                .record_ops(true)
                .message_loss(0.1)
                .build(),
            4,
        ),
        (
            "sharded/dynamic/n32/churn+burst",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .scenario(
                    ScenarioScript::new()
                        .crash(q / 2, (24..32).collect())
                        .recover(2 * q, (28..32).collect()),
                )
                .loss_schedule(LossSchedule::burst(0.05, 0.9, 2 * q, 2 * q + 4))
                .build(),
            5,
        ),
        (
            "sharded/dynamic/n32/partition-heal",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .scenario(
                    ScenarioScript::new()
                        .partition(2 * q, PartitionCut::split_at(32, 16))
                        .heal(2 * q + q / 2),
                )
                .build(),
            6,
        ),
        (
            "sharded/complete/n40/leader-election",
            RunConfig::builder(40).gamma(3.0).leader_election().build(),
            7,
        ),
        // Larger record-ops row: at 8 threads the op-log scatter runs with
        // several non-trivial shards per round, exercising the prefix-summed
        // pull/push cursor split (tiny rows collapse to 1–2 live shards).
        (
            "sharded/complete/n64/record-ops+loss",
            RunConfig::builder(64)
                .gamma(3.0)
                .colors(vec![32, 32])
                .record_ops(true)
                .message_loss(0.15)
                .build(),
            8,
        ),
    ]
}

/// label → (pinned sharded digest, pinned `metrics.undelivered`).
const GOLDEN: &[(&str, u64, u64)] = &[
    // Note the first row: loss-free, so the per-agent discipline draws
    // nothing and the digest *equals* the static corpus row
    // `complete/n24/balanced` — the disciplines may only diverge through
    // loss coins, and this row proves they don't diverge elsewhere.
    ("sharded/complete/n24/balanced", 0xea7a9ceb283ba75c, 0),
    ("sharded/complete/n32/faults+loss", 0xad25676f0b2a8268, 706),
    ("sharded/ring/n48/three-colors", 0xa7d69f1c59eb5817, 0),
    ("sharded/complete/n24/record-ops+loss", 0x1895bb9067a6dc0d, 225),
    ("sharded/dynamic/n32/churn+burst", 0x564e41a4bee73899, 366),
    ("sharded/dynamic/n32/partition-heal", 0xc9c3f4a0da86baaa, 119),
    ("sharded/complete/n40/leader-election", 0xbf5e42b65f80c015, 0),
    ("sharded/complete/n64/record-ops+loss", 0x412d4dc3f4a301f4, 991),
];

#[test]
fn sharded_golden_rows_are_thread_invariant_and_pinned() {
    let regen = std::env::var("GOLDEN_REGEN").is_ok();
    let counts = thread_counts();
    let mut failures = Vec::new();
    if regen {
        println!("const GOLDEN: &[(&str, u64, u64)] = &[");
    }
    for (label, cfg, seed) in corpus() {
        let mut digests = Vec::new();
        let mut undelivered = Vec::new();
        for &threads in &counts {
            let mut cfg = cfg.clone();
            cfg.rng_discipline = RngDiscipline::PerAgent;
            cfg.threads = threads;
            // Disable the agents-per-shard floor: these rows are tiny on
            // purpose, and the point is to execute *really* sharded.
            cfg.shard_floor = Some(0);
            let report = run_protocol(&cfg, seed);
            digests.push(report_digest(&report));
            undelivered.push(report.metrics.undelivered);
        }
        // Invariance across every requested thread count.
        if !digests.windows(2).all(|w| w[0] == w[1]) {
            failures.push(format!(
                "{label}: digests differ across RFC_THREADS {counts:?}: {digests:x?}"
            ));
            continue;
        }
        let (got, got_u) = (digests[0], undelivered[0]);
        if regen {
            println!("    (\"{label}\", {got:#018x}, {got_u}),");
            continue;
        }
        match GOLDEN.iter().find(|(l, _, _)| *l == label) {
            Some((_, want, want_u)) if *want == got && *want_u == got_u => {}
            Some((_, want, want_u)) => failures.push(format!(
                "{label}: digest {got:#018x} / undelivered {got_u} != pinned {want:#018x} / {want_u}"
            )),
            None => failures.push(format!("{label}: no pinned digest ({got:#018x})")),
        }
    }
    if regen {
        println!("];");
        return;
    }
    assert!(
        failures.is_empty(),
        "sharded corpus diverged:\n{}",
        failures.join("\n")
    );
}

#[test]
fn oplog_toggle_changes_audit_only() {
    // `record_ops` is pure observability: switching it off must leave the
    // digest (audit stripped — `report_digest` hashes `r.audit`) and the
    // full `Metrics` bit-identical, dropping only the good-execution audit.
    // This is what lets production-scale rows (E16) skip the op log.
    for (label, cfg, seed) in corpus() {
        let mut on = cfg.clone();
        on.rng_discipline = RngDiscipline::PerAgent;
        on.threads = 4;
        on.shard_floor = Some(0);
        on.record_ops = true;
        let mut off = on.clone();
        off.record_ops = false;
        let mut r_on = run_protocol(&on, seed);
        let r_off = run_protocol(&off, seed);
        assert!(r_on.audit.is_some(), "{label}: record_ops=true must audit");
        assert!(r_off.audit.is_none(), "{label}: record_ops=false must not");
        assert_eq!(
            r_on.metrics, r_off.metrics,
            "{label}: op-log toggle changed Metrics"
        );
        r_on.audit = None;
        assert_eq!(
            report_digest(&r_on),
            report_digest(&r_off),
            "{label}: op-log toggle changed the digest beyond the audit"
        );
    }
}

#[test]
fn autotuned_shards_reproduce_pinned_digests() {
    // The per-phase shard autotuner only moves the thread count between
    // phases — a pure throughput knob — so an autotuned run must reproduce
    // the pinned sharded digests bit for bit and report its schedule.
    for (label, cfg, seed) in corpus() {
        let Some((_, want, want_u)) = GOLDEN.iter().find(|(l, _, _)| *l == label) else {
            continue;
        };
        let mut cfg = cfg.clone();
        cfg.rng_discipline = RngDiscipline::PerAgent;
        cfg.threads = 8;
        cfg.shard_floor = Some(0);
        cfg.autotune_shards = true;
        let report = run_protocol(&cfg, seed);
        assert_eq!(
            report_digest(&report),
            *want,
            "{label}: autotuned digest diverged from the pinned capture"
        );
        assert_eq!(report.metrics.undelivered, *want_u, "{label}: undelivered");
        let schedule = report
            .shard_schedule
            .as_ref()
            .expect("autotuned staged run must report its shard schedule");
        assert!(!schedule.is_empty(), "{label}: empty shard schedule");
        for (phase, chosen) in schedule {
            assert!(
                [1, 2, 4, 8].contains(chosen),
                "{label}/{phase}: chose non-candidate shard count {chosen}"
            );
        }
    }
}

#[test]
fn staged_sequential_spelling_matches_static_golden_path() {
    // `threads > 1` with the default Sequential discipline must replay
    // the monolithic engine — i.e. the *static* golden path — exactly.
    for (label, cfg, seed) in corpus() {
        if !cfg.scenario.is_empty() || cfg.loss_schedule.is_some() {
            continue; // dynamic rows live in golden_runs.rs already
        }
        let sequential = report_digest(&run_protocol(&cfg, seed));
        let mut staged = cfg.clone();
        staged.threads = 4; // Sequential discipline, staged engine
        staged.shard_floor = Some(0); // below the floor this would fall back
        assert_eq!(
            report_digest(&run_protocol(&staged, seed)),
            sequential,
            "{label}: staged sequential spelling diverged from the monolithic engine"
        );
        // With the default floor the same config falls back to the
        // monolithic engine outright — also digest-identical.
        let mut floored = cfg.clone();
        floored.threads = 4;
        assert_eq!(
            report_digest(&run_protocol(&floored, seed)),
            sequential,
            "{label}: small-n shard-floor fallback diverged from the monolithic engine"
        );
    }
}
