//! Instance-plane independence corpus (tier-2).
//!
//! The multi-instance plane's core contract: every instance's behavior
//! is a pure function of `(master seed, instance index)` — co-hosted
//! instances share wire batches and engine rounds but can never perturb
//! each other's RNG or loss streams. These tests pin:
//!
//! * **stream keying** — `loss_streams::per_instance` draws are stable
//!   per key and distinct across instances;
//! * **co-hosting invariance** — appending instances to a plan leaves
//!   every existing instance's full `InstanceReport` identical, under
//!   loss, at several thread counts;
//! * **thread invariance** — a multi-instance plane produces the same
//!   reports at every thread count (the per-part keyed loss draws are
//!   order-free, so the staged engine's sharding is unobservable).

use gossip_net::rng::loss_streams;
use rfc_core::runner::RunConfig;
use rfc_core::{run_plane, InstanceKind, InstancePlan, InstanceSpec, Priority};

/// A mixed-kind plan: consensus + rumor instances, one staggered start,
/// one Low priority — exercises every per-instance axis at once.
fn mixed_plan(extra_rumor: usize) -> InstancePlan {
    let mut plan = InstancePlan::consensus(1)
        .with_spec(InstanceSpec::new(InstanceKind::RumorVote { k: 12 }))
        .with_spec(
            InstanceSpec::new(InstanceKind::RumorVote { k: 12 })
                .priority(Priority::Low)
                .start_at(5),
        );
    for _ in 0..extra_rumor {
        plan = plan.with_spec(InstanceSpec::new(InstanceKind::RumorVote { k: 12 }));
    }
    plan
}

fn lossy_cfg(plan: InstancePlan, threads: usize) -> RunConfig {
    let mut cfg = RunConfig::builder(16)
        .gamma(3.0)
        .colors(vec![8, 8])
        .message_loss(0.25)
        .instances(plan)
        .build();
    cfg.threads = threads;
    cfg.shard_floor = Some(0); // tiny n: keep real multi-shard runs
    cfg
}

#[test]
fn per_instance_loss_streams_are_keyed_independently() {
    let seed = 0xFEED_BEEF;
    let draw = |family: u64, round: usize, instance: u64, agent: u32, peer: u32| {
        loss_streams::per_instance(seed, family, round, instance, agent, peer).chance(0.5)
    };
    // Stable: the same key always yields the same coin.
    for family in [loss_streams::QUERY, loss_streams::PUSH, loss_streams::REPLY] {
        assert_eq!(draw(family, 3, 7, 2, 9), draw(family, 3, 7, 2, 9));
    }
    // Distinct across instances: two instances sharing (family, round,
    // agent, peer) must not share one coin stream. A single pair could
    // collide by chance, so check many keys disagree somewhere.
    let coins = |instance: u64| -> Vec<bool> {
        (0..64usize)
            .map(|r| draw(loss_streams::PUSH, r, instance, (r % 16) as u32, ((r + 1) % 16) as u32))
            .collect()
    };
    assert_ne!(coins(0), coins(1), "instances 0 and 1 share a loss stream");
    assert_ne!(coins(1), coins(2), "instances 1 and 2 share a loss stream");
}

#[test]
fn appending_instances_never_perturbs_existing_reports() {
    // The independence property the `per_instance` keying exists for:
    // instance i's report — decisions, clocks, payload meters, observed
    // loss — is invariant to co-hosting more instances, under loss, at
    // several thread counts (engine sharding included).
    for threads in [1usize, 4] {
        let small = run_plane(&lossy_cfg(mixed_plan(0), threads), 21);
        let large = run_plane(&lossy_cfg(mixed_plan(8), threads), 21);
        assert_eq!(small.instances.len() + 8, large.instances.len());
        for (j, (a, b)) in small.instances.iter().zip(&large.instances).enumerate() {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "instance {j} perturbed by co-hosting (threads {threads})"
            );
        }
    }
}

#[test]
fn multi_instance_plane_is_thread_invariant() {
    let baseline = run_plane(&lossy_cfg(mixed_plan(3), 1), 9);
    let want: Vec<String> =
        baseline.instances.iter().map(|i| format!("{i:?}")).collect();
    for threads in [2usize, 8] {
        let plane = run_plane(&lossy_cfg(mixed_plan(3), threads), 9);
        let got: Vec<String> = plane.instances.iter().map(|i| format!("{i:?}")).collect();
        assert_eq!(got, want, "instance reports drifted at threads={threads}");
        assert_eq!(plane.rounds, baseline.rounds);
        assert_eq!(
            plane.aggregate, baseline.aggregate,
            "aggregate metrics drifted at threads={threads}"
        );
    }
}
