//! Golden-run regression corpus (tier-2).
//!
//! Pins `seed → RunReport` digests for a matrix of
//! (experiment config × topology × fault placement × loss), so every
//! later "exact, bit-identical" refactor claim is verified by one suite
//! instead of ad-hoc per-PR tests. The digests were captured from the
//! static engine *before* the dynamic-adversity subsystem landed; the
//! static rows therefore also prove that empty-script / constant-schedule
//! runs still take the pre-dynamics code path bit for bit.
//!
//! Regenerating (after an *intentional* behavior change only):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_runs -- --nocapture
//! ```
//!
//! then paste the printed table over `GOLDEN` below and say in the PR
//! why the digests moved. A digest is an FNV-1a-64 over every
//! deterministic pre-dynamics field of the report (outcome, per-agent
//! decisions, colors, verify failures, winner, wire meters incl.
//! per-phase tallies, and the good-execution audit when recorded) —
//! wall-clock is excluded, and the post-dynamics `undelivered` meter is
//! pinned as its own `GOLDEN` column (see [`report_digest`]).

mod common;

use common::report_digest;
use gossip_net::fault::Placement;
use rfc_core::runner::{RunConfig, TopologySpec};
use rfc_core::run_protocol;
use rfc_core::{LossSchedule, PartitionCut, ScenarioScript};

/// The corpus matrix: label, config, seed. Labels are stable identifiers;
/// rows may be appended but never silently changed.
fn corpus() -> Vec<(&'static str, RunConfig, u64)> {
    vec![
        (
            "complete/n24/balanced",
            RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build(),
            1,
        ),
        (
            "complete/n24/balanced/seed2",
            RunConfig::builder(24).gamma(3.0).colors(vec![12, 12]).build(),
            2,
        ),
        (
            "complete/n32/faults-random",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .faults(0.25, Placement::Random { seed: 5 })
                .build(),
            3,
        ),
        (
            "complete/n32/faults-lowids",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .faults(0.25, Placement::LowIds)
                .build(),
            4,
        ),
        (
            "ring/n48/three-colors",
            RunConfig::builder(48)
                .gamma(4.0)
                .colors(vec![16, 16, 16])
                .topology(TopologySpec::Ring)
                .build(),
            5,
        ),
        (
            "erdos-renyi/n48",
            RunConfig::builder(48)
                .gamma(4.0)
                .colors(vec![24, 24])
                .topology(TopologySpec::ErdosRenyi { p: 0.3 })
                .build(),
            6,
        ),
        (
            "random-regular/n40/d8",
            RunConfig::builder(40)
                .gamma(4.0)
                .colors(vec![20, 20])
                .topology(TopologySpec::RandomRegular { d: 8 })
                .build(),
            7,
        ),
        (
            "complete/n32/loss-0.25",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .message_loss(0.25)
                .build(),
            8,
        ),
        (
            "complete/n24/record-ops",
            RunConfig::builder(24)
                .gamma(3.0)
                .colors(vec![12, 12])
                .record_ops(true)
                .build(),
            9,
        ),
        (
            "complete/n24/leader-election",
            RunConfig::builder(24).gamma(3.0).leader_election().build(),
            10,
        ),
        (
            "complete/n32/faults-highids+loss",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .faults(0.125, Placement::HighIds)
                .message_loss(0.1)
                .build(),
            11,
        ),
        (
            "complete/n32/skip-coherence",
            RunConfig::builder(32)
                .gamma(3.0)
                .colors(vec![16, 16])
                .skip_coherence(true)
                .build(),
            12,
        ),
        // Dynamic-adversity rows (pinned when the scenario engine
        // landed): churn, a healed partition, and a loss burst.
        (
            "dynamic/n32/churn",
            {
                let q = RunConfig::builder(32).gamma(3.0).build().params().q;
                RunConfig::builder(32)
                    .gamma(3.0)
                    .colors(vec![16, 16])
                    .scenario(
                        ScenarioScript::new()
                            .crash(q / 2, (24..32).collect())
                            .recover(2 * q, (28..32).collect()),
                    )
                    .build()
            },
            13,
        ),
        (
            "dynamic/n32/partition-heal",
            {
                let q = RunConfig::builder(32).gamma(3.0).build().params().q;
                RunConfig::builder(32)
                    .gamma(3.0)
                    .colors(vec![16, 16])
                    .scenario(
                        ScenarioScript::new()
                            .partition(2 * q, PartitionCut::split_at(32, 16))
                            .heal(2 * q + q / 2),
                    )
                    .build()
            },
            14,
        ),
        (
            "dynamic/n32/loss-burst",
            {
                let q = RunConfig::builder(32).gamma(3.0).build().params().q;
                RunConfig::builder(32)
                    .gamma(3.0)
                    .colors(vec![16, 16])
                    .loss_schedule(LossSchedule::burst(0.05, 0.9, 2 * q, 2 * q + 4))
                    .build()
            },
            15,
        ),
    ]
}

/// label → (pinned report digest, pinned `metrics.undelivered`). The
/// digest column of the static rows is the capture from the
/// pre-dynamics engine; the undelivered column pins the new metering
/// counter the dynamics contract is built on (`messages_sent -
/// undelivered` = exact delivery count).
const GOLDEN: &[(&str, u64, u64)] = &[
    ("complete/n24/balanced", 0xea7a9ceb283ba75c, 0),
    ("complete/n24/balanced/seed2", 0x3638d0144f321131, 0),
    ("complete/n32/faults-random", 0x3b17ba8baf44aea8, 382),
    ("complete/n32/faults-lowids", 0x384af7a1c0677ef3, 359),
    ("ring/n48/three-colors", 0x44f8017965b9fa6a, 0),
    ("erdos-renyi/n48", 0x782b8553300ee65d, 0),
    ("random-regular/n40/d8", 0x9d1e1f715113e77a, 0),
    ("complete/n32/loss-0.25", 0x8e9b908b5d813737, 612),
    ("complete/n24/record-ops", 0xb408719483ae19cd, 0),
    ("complete/n24/leader-election", 0x3468fce492e17339, 0),
    ("complete/n32/faults-highids+loss", 0x98badfda66452ef5, 400),
    ("complete/n32/skip-coherence", 0xa3b23925c6fd03dd, 0),
    ("dynamic/n32/churn", 0x111b00f472721abd, 213),
    ("dynamic/n32/partition-heal", 0x534d74ff19644a35, 118),
    ("dynamic/n32/loss-burst", 0xc265322569fafaca, 254),
];

#[test]
fn golden_single_instance_plane_matches_pinned_rows() {
    // The instance plane's golden row: a single-consensus plan through
    // the multiplexer must reproduce the *pre-plane* pinned digests
    // exactly — including a lossy row, since the single-instance path
    // keeps loss in the engine. No regeneration story here: if these
    // move, the plane stopped being a pure generalization.
    for label in ["complete/n24/balanced", "complete/n32/loss-0.25"] {
        let (_, cfg, seed) = corpus()
            .into_iter()
            .find(|(l, _, _)| *l == label)
            .expect("corpus row exists");
        let plane = rfc_core::run_plane(&cfg, seed);
        let report = plane.legacy.as_ref().expect("single-consensus legacy view");
        let got = report_digest(report);
        let (_, want, want_u) = GOLDEN
            .iter()
            .find(|(l, _, _)| *l == label)
            .expect("pinned digest exists");
        assert_eq!(
            got, *want,
            "{label}: plane digest {got:#018x} != pinned {want:#018x}"
        );
        assert_eq!(report.metrics.undelivered, *want_u, "{label}: undelivered");
    }
}

#[test]
fn golden_static_corpus_is_bit_identical() {
    let regen = std::env::var("GOLDEN_REGEN").is_ok();
    let mut failures = Vec::new();
    if regen {
        println!("const GOLDEN: &[(&str, u64, u64)] = &[");
    }
    for (label, cfg, seed) in corpus() {
        let report = run_protocol(&cfg, seed);
        let got = report_digest(&report);
        let undelivered = report.metrics.undelivered;
        if regen {
            println!("    (\"{label}\", {got:#018x}, {undelivered}),");
            continue;
        }
        match GOLDEN.iter().find(|(l, _, _)| *l == label) {
            Some((_, want, want_u)) if *want == got && *want_u == undelivered => {}
            Some((_, want, want_u)) => failures.push(format!(
                "{label}: digest {got:#018x} / undelivered {undelivered} != pinned {want:#018x} / {want_u}"
            )),
            None => failures.push(format!("{label}: no pinned digest ({got:#018x})")),
        }
    }
    if regen {
        println!("];");
        return;
    }
    assert!(
        failures.is_empty(),
        "golden corpus diverged — a refactor changed run behavior:\n{}",
        failures.join("\n")
    );
}
